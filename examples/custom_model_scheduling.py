"""Schedule a custom architecture and tune its fusion with BO.

Scenario: you have a model that is not in the Table I zoo — here a
ViT-style transformer — and want to know (a) how much DeAR would help
on your cluster, (b) what fusion buffer to use, and (c) what the
timeline looks like.  This example:

1. describes the architecture with :class:`ModelBuilder`;
2. calibrates a compute profile from a measured single-GPU time;
3. compares schedulers on a 32-GPU / 25GbE cloud cluster;
4. tunes DeAR's buffer size with the from-scratch BO loop;
5. exports a Chrome trace of the winning schedule
   (load ``results/custom_model_timeline.json`` in about://tracing).

Run:
    python examples/custom_model_scheduling.py
"""

import pathlib

from repro.bayesopt import BayesianOptimizer
from repro.models.layers import ModelBuilder
from repro.models.profiles import TimingModel
from repro.network import ETHERNET_25G, NVLINK, ClusterSpec, CollectiveTimeModel
from repro.schedulers import get_scheduler

#: Measured (hypothetically) single-GPU iteration compute time.
MEASURED_ITERATION_COMPUTE = 0.18
SEQ, HIDDEN, LAYERS = 196, 512, 12


def build_vit_small():
    """A ViT-S/16-like encoder: patch embed + 12 transformer blocks."""
    builder = ModelBuilder(
        name="vit_small", display_name="ViT-Small/16", default_batch_size=128,
        sample_description="224x224x3 image as 196 patches",
    )
    builder.add_layer(
        "patch_embed", "conv", [("weight", 3 * 16 * 16 * HIDDEN), ("bias", HIDDEN)],
        flops=2.0 * 3 * 16 * 16 * HIDDEN * SEQ,
    )
    for block in range(LAYERS):
        prefix = f"blocks.{block}"
        builder.add_layer(
            f"{prefix}.norm1", "layernorm",
            [("weight", HIDDEN), ("bias", HIDDEN)], flops=8.0 * SEQ * HIDDEN,
        )
        builder.add_layer(
            f"{prefix}.attn.qkv", "fc",
            [("weight", HIDDEN * 3 * HIDDEN), ("bias", 3 * HIDDEN)],
            flops=2.0 * SEQ * HIDDEN * 3 * HIDDEN + 4.0 * SEQ * SEQ * HIDDEN,
        )
        builder.add_layer(
            f"{prefix}.attn.proj", "fc",
            [("weight", HIDDEN * HIDDEN), ("bias", HIDDEN)],
            flops=2.0 * SEQ * HIDDEN * HIDDEN,
        )
        builder.add_layer(
            f"{prefix}.norm2", "layernorm",
            [("weight", HIDDEN), ("bias", HIDDEN)], flops=8.0 * SEQ * HIDDEN,
        )
        builder.add_layer(
            f"{prefix}.mlp.fc1", "fc",
            [("weight", HIDDEN * 4 * HIDDEN), ("bias", 4 * HIDDEN)],
            flops=2.0 * SEQ * HIDDEN * 4 * HIDDEN,
        )
        builder.add_layer(
            f"{prefix}.mlp.fc2", "fc",
            [("weight", 4 * HIDDEN * HIDDEN), ("bias", HIDDEN)],
            flops=2.0 * SEQ * 4 * HIDDEN * HIDDEN,
        )
    builder.add_layer(
        "norm", "layernorm", [("weight", HIDDEN), ("bias", HIDDEN)],
        flops=8.0 * SEQ * HIDDEN,
    )
    builder.fc("head", HIDDEN, 1000)
    return builder.build()


def main() -> None:
    model = build_vit_small()
    print(model.describe())

    cluster = ClusterSpec(
        name="32xGPU/25GbE-cloud", nodes=8, gpus_per_node=4,
        inter_link=ETHERNET_25G, intra_link=NVLINK,
    )
    print(cluster.describe())
    timing = TimingModel.for_model(model, iteration_compute=MEASURED_ITERATION_COMPUTE)
    cost = CollectiveTimeModel(cluster)

    print(f"\ngradient volume: {model.gradient_bytes / 1e6:.1f} MB, "
          f"full all-reduce: {cost.all_reduce(model.gradient_bytes) * 1e3:.1f} ms")

    print(f"\n{'scheduler':<24} {'iter (ms)':>10} {'samples/s':>11}")
    for label, name, options in [
        ("WFBP", "wfbp", {}),
        ("Horovod (25MB)", "horovod", {"buffer_bytes": 25e6}),
        ("DDP (25MB)", "ddp", {}),
        ("DeAR (25MB)", "dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
    ]:
        result = get_scheduler(name, **options).run(timing, cost)
        print(f"{label:<24} {result.iteration_time * 1e3:>10.1f} "
              f"{result.throughput:>11.0f}")

    # Tune DeAR's fusion buffer with the paper's BO loop.
    optimizer = BayesianOptimizer(1e6, 100e6, xi=0.1, seed=0)
    for trial in range(10):
        buffer = optimizer.suggest()
        result = get_scheduler("dear", fusion="buffer", buffer_bytes=buffer).run(
            timing, cost
        )
        optimizer.observe(buffer, result.throughput)
    best_buffer, best_throughput = optimizer.best
    print(f"\nBO-tuned buffer: {best_buffer / 1e6:.1f} MB "
          f"-> {best_throughput:.0f} samples/s (10 trials)")

    # Export the winning timeline for chrome://tracing.
    final = get_scheduler("dear", fusion="buffer", buffer_bytes=best_buffer).run(
        timing, cost
    )
    out = pathlib.Path("results")
    out.mkdir(exist_ok=True)
    trace_path = out / "custom_model_timeline.json"
    trace_path.write_text(final.tracer.to_chrome_trace())
    print(f"timeline written to {trace_path} (open in about://tracing)")


if __name__ == "__main__":
    main()
