"""Diagnose a schedule: where does the iteration time actually go?

Runs three workloads spanning the paper's regimes, prints the timeline
of each, and lets :func:`repro.analysis.diagnose` explain the traced
behaviour — bottleneck, overlap efficiency, startup share — with an
Eq. 6-9-grounded suggestion:

- ResNet-50 on 100GbIB: compute-bound, nothing for scheduling to fix;
- DenseNet-201 unfused on 10GbE: startup-latency bound (604 tensors!),
  the case tensor fusion exists for;
- BERT-Large on 10GbE: bandwidth-bound, where only compression or a
  fatter pipe helps once DeAR's overlap is exhausted.

Run:
    python examples/diagnose_schedule.py
"""

from repro.analysis import diagnose
from repro.experiments.plotting import ascii_timeline
from repro.models import get_model
from repro.network import CollectiveTimeModel, cluster_100gbib, cluster_10gbe
from repro.schedulers import simulate

CASES = (
    ("ResNet-50, DeAR, 100GbIB", "resnet50", cluster_100gbib(), "dear",
     {"fusion": "buffer", "buffer_bytes": 25e6}),
    ("DenseNet-201, WFBP unfused, 10GbE", "densenet201", cluster_10gbe(),
     "wfbp", {}),
    ("BERT-Large, DeAR, 10GbE", "bert_large", cluster_10gbe(), "dear",
     {"fusion": "buffer", "buffer_bytes": 25e6}),
)


def main() -> None:
    for label, model_name, cluster, scheduler, options in CASES:
        model = get_model(model_name)
        cost = CollectiveTimeModel(cluster)
        result = simulate(scheduler, model, cluster, **options)
        diagnosis = diagnose(result, alpha=cost.alpha, world_size=cost.world_size)

        print(f"### {label}")
        ff_starts = sorted(
            span.start for span in result.tracer.filter(category="ff")
            if span.name.endswith(".0")
        )
        print(
            ascii_timeline(
                result.tracer.spans, ff_starts[-2], ff_starts[-1], width=72
            )
        )
        print(diagnosis.describe())
        print()


if __name__ == "__main__":
    main()
