"""Regenerate the paper's full evaluation section in one run.

Executes every experiment harness (Table I, Figs. 3/5/6/7/8/9/10/11,
Table II) in paper order and prints each result table — the same
content ``dear-repro all`` produces, packaged as a script with a
per-experiment one-line summary of what to look for.

Run (takes a few minutes):
    python examples/paper_evaluation.py
"""

import importlib
import time

from repro.experiments import EXPERIMENTS

COMMENTARY = {
    "table1": "model inventory — must match the paper to the digit",
    "fig3": "BO finds a near-optimal DenseNet-201 buffer in 9 samples",
    "fig5": "RS + AG == all-reduce at every size: decoupling is free",
    "fig6": "DeAR > WFBP everywhere; ByteScheduler collapses on 10GbE CNNs",
    "fig7": "DeAR > Horovod/DDP/MG-WFBP; gains larger on 10GbE than IB",
    "table2": "DeAR reaches a high fraction of the S^max ceiling",
    "fig8": "DeAR exposes less comm; RS-only exposure < AG-only exposure",
    "fig9": "DeAR-BO is the best fusion variant on every workload",
    "fig10": "BO stabilises in a few trials; random/grid need tens",
    "fig11": "DeAR stays on top at every per-GPU batch size",
    "timelines": "Figs. 1-2 schedules, regenerated as Gantt charts",
}


def main() -> None:
    total_started = time.time()
    for name in EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        started = time.time()
        rows = module.run()
        elapsed = time.time() - started
        print(f"\n=== {name} ({elapsed:.1f}s) — {COMMENTARY.get(name, name)} ===")
        print(module.format_rows(rows))
    print(f"\ntotal: {time.time() - total_started:.0f}s")


if __name__ == "__main__":
    main()
