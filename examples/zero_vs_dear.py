"""ZeRO/FSDP vs DeAR: the communication-memory trade-off (§VII-B).

The paper's related work argues ZeRO decouples all-reduce like DeAR but
for a different goal — sharding model states — and pays for it with an
extra all-gather per iteration ("which unfortunately has increased the
total communication overheads compared with DeAR").  This example
quantifies both sides of the trade on BERT-Large:

- iteration time and per-iteration communication volume under DeAR vs
  ZeRO-3, on both of the paper's networks;
- per-GPU memory under each (ZeRO's raison d'etre), including whether
  the workload fits an 11 GB 2080Ti at all.

Run:
    python examples/zero_vs_dear.py
"""

from repro.analysis import GTX_2080TI_BYTES, estimate_memory
from repro.models import get_model
from repro.network import cluster_100gbib, cluster_10gbe
from repro.schedulers import simulate


def communication_volume(result) -> float:
    """Bytes moved in one steady-state iteration (from the trace)."""
    return sum(
        span.metadata["bytes"]
        for span in result.tracer.spans
        if span.category in ("comm.rs", "comm.ag", "comm.ar")
        and span.metadata["iteration"] == 2
    )


def main() -> None:
    model = get_model("bert_large")
    print(model.describe())
    print(f"gradient volume m = {model.gradient_bytes / 1e6:.0f} MB\n")

    header = (
        f"{'network':<10} {'scheduler':<8} {'iter (ms)':>10} "
        f"{'comm volume':>12} {'volume/m':>9}"
    )
    print(header)
    print("-" * len(header))
    for cluster in (cluster_10gbe(), cluster_100gbib()):
        for name, options in (
            ("dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
            ("zero", {"buffer_bytes": 25e6}),
        ):
            result = simulate(name, model, cluster, **options)
            volume = communication_volume(result)
            print(
                f"{cluster.inter_link.name:<10} {name:<8} "
                f"{result.iteration_time * 1e3:>10.1f} "
                f"{volume / 1e6:>10.0f}MB {volume / model.gradient_bytes:>9.2f}"
            )
    print()

    print(f"{'scheduler':<8} {'memory (GB)':>12} {'fits 11GB 2080Ti':>18}")
    for name in ("dear", "zero"):
        estimate = estimate_memory(name, model, world_size=64)
        print(
            f"{name:<8} {estimate.total / 1e9:>12.2f} "
            f"{'yes' if estimate.fits(GTX_2080TI_BYTES) else 'NO (OOM)':>18}"
        )
    print(
        "\nReading: ZeRO moves 1.5x the bytes (3m vs 2m) and is never\n"
        "faster, but shards the 4 GB of BERT-Large model states across\n"
        "the 64 GPUs — the memory/communication trade the paper's\n"
        "related-work section describes, and the combination PyTorch\n"
        "FSDP later adopted (ZeRO sharding + DeAR-style FeedPipe)."
    )


if __name__ == "__main__":
    main()
