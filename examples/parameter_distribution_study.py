"""How a model's tensor-size distribution dictates its fusion policy.

Section IV's premise is that the right fusion depends on the model:
DenseNet's 604 mostly-tiny tensors are startup-latency poison, BERT's
uniform blocks suit fixed-layer grouping, VGG's three giant FC tensors
barely need fusion at all.  This study walks the whole zoo (the paper's
five models plus the VGG-16 / GPT-2 extensions), prints each model's
tensor-size distribution, and BO-tunes DeAR's buffer per model — making
the distribution → policy connection quantitative.

Run:
    python examples/parameter_distribution_study.py
"""

import numpy as np

from repro.bayesopt import BayesianOptimizer
from repro.models import get_model
from repro.models.profiles import TimingModel
from repro.network import CollectiveTimeModel, cluster_10gbe
from repro.schedulers import get_scheduler

#: Extension models need an explicit single-GPU iteration time.
ASSUMED_COMPUTE = {"vgg16": 0.30, "gpt2_small": 0.55}

ZOO = (
    "resnet50", "densenet201", "inception_v4",
    "bert_base", "bert_large", "vgg16", "gpt2_small",
)


def tensor_stats(model) -> dict:
    sizes = np.array([t.nbytes for t in model.tensors_forward_order()])
    return {
        "count": len(sizes),
        "median_kb": float(np.median(sizes)) / 1e3,
        "p95_mb": float(np.percentile(sizes, 95)) / 1e6,
        "top3_share": float(np.sort(sizes)[-3:].sum() / sizes.sum()),
    }


def tune_buffer(model, cost, iteration_compute=None, trials=8):
    timing = TimingModel.for_model(model, iteration_compute=iteration_compute)
    optimizer = BayesianOptimizer(1e6, 100e6, xi=0.1, seed=0)
    for _ in range(trials):
        buffer_bytes = optimizer.suggest()
        result = get_scheduler("dear", fusion="buffer",
                               buffer_bytes=buffer_bytes).run(timing, cost)
        optimizer.observe(buffer_bytes, result.throughput)
    unfused = get_scheduler("dear", fusion="none").run(timing, cost)
    best_buffer, best_throughput = optimizer.best
    return best_buffer, best_throughput / unfused.throughput


def main() -> None:
    cost = CollectiveTimeModel(cluster_10gbe())
    header = (
        f"{'model':<13} {'tensors':>7} {'median':>9} {'p95':>8} "
        f"{'top3 share':>10} {'best buf':>9} {'fusion gain':>11}"
    )
    print(header)
    print("-" * len(header))
    for name in ZOO:
        model = get_model(name)
        stats = tensor_stats(model)
        best_buffer, gain = tune_buffer(
            model, cost, iteration_compute=ASSUMED_COMPUTE.get(name)
        )
        print(
            f"{name:<13} {stats['count']:>7} {stats['median_kb']:>7.1f}KB "
            f"{stats['p95_mb']:>6.1f}MB {stats['top3_share']:>9.0%} "
            f"{best_buffer / 1e6:>7.1f}MB {gain:>10.2f}x"
        )
    print(
        "\nReading: the more of a model's bytes sit in tiny tensors\n"
        "(DenseNet: median 4KB), the more fusion buys (7x!);  models\n"
        "whose mass is already in a few giant tensors (VGG: top-3\n"
        "tensors ~90% of bytes) gain the least — fusion policy is a\n"
        "function of the tensor-size distribution, which is why DeAR\n"
        "tunes it at run time instead of hard-coding it."
    )


if __name__ == "__main__":
    main()
