"""Service-path tests: daemon lifecycle, batching, dedup, wire protocol.

Each test runs a real :class:`SimulationServer` on an ephemeral port
with a throwaway cache, drives it over HTTP with the stdlib client, and
reads the outcome from the shared metrics registry — the same signals
the CI serve-smoke job asserts on.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runner.cache import ResultCache
from repro.serve import ServeClient, ServeError, SimulationServer
from repro.telemetry.registry import default_registry

PAYLOAD = {
    "scheduler": "wfbp",
    "model": "resnet50",
    "cluster": "10gbe",
    "iterations": 4,
}


@pytest.fixture()
def server(tmp_path):
    instance = SimulationServer(
        port=0,
        cache=ResultCache(root=tmp_path / "serve-cache"),
        batch_window=0.02,
        jobs=1,
    ).start()
    yield instance
    instance.shutdown()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=120.0)


def _counter(name: str, **labels) -> float:
    family = default_registry().snapshot().get(name)
    if not family:
        return 0.0
    return sum(
        entry["value"]
        for entry in family["values"]
        if all(entry["labels"].get(k) == v for k, v in labels.items())
    )


class TestEndpoints:
    def test_health(self, client, server):
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["batch_window"] == server.batcher.batch_window

    def test_simulate_roundtrip(self, client):
        response = client.simulate(PAYLOAD)
        assert response["label"].startswith("wfbp/resnet50/")
        assert len(response["fingerprint"]) == 64
        result = response["result"]
        assert result["iteration_time"] > 0
        assert len(result["iteration_times"]) == 4 - 1  # warmup dropped

    def test_simulate_with_faults(self, client):
        payload = dict(PAYLOAD)
        payload["faults"] = {
            "stragglers": [{"start": 0.0, "end": 5.0, "compute_factor": 1.5}]
        }
        faulty = client.simulate(payload)["result"]
        healthy = client.simulate(PAYLOAD)["result"]
        assert "fault_plan" in faulty["extras"]
        assert faulty["iteration_time"] > healthy["iteration_time"]

    def test_metrics_snapshot(self, client):
        client.simulate(PAYLOAD)
        metrics = client.metrics()
        assert "serve.requests" in metrics
        assert "serve.batches" in metrics

    def test_unknown_endpoint_404(self, client, server):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404


class TestWireValidation:
    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({**PAYLOAD, "fastpath": True}, "unknown config fields"),
            ({"scheduler": "wfbp"}, "missing required fields"),
            ({**PAYLOAD, "scheduler": "nope"}, "unknown scheduler"),
            ({**PAYLOAD, "options": 7}, "options must be an object"),
        ],
    )
    def test_bad_payloads_answer_400(self, client, payload, fragment):
        with pytest.raises(ServeError) as excinfo:
            client.simulate(payload)
        assert excinfo.value.status == 400
        assert fragment in excinfo.value.message

    def test_non_json_body_answers_400(self, client, server):
        request = urllib.request.Request(
            f"{server.url}/v1/simulate", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400


class TestBatchingAndDedup:
    def test_identical_concurrent_requests_compute_once(self, client):
        computed_before = _counter("runner.specs", outcome="computed")
        dedup_before = _counter("serve.dedup_hits")
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(client.simulate, [PAYLOAD] * 8))
        assert _counter("runner.specs", outcome="computed") - computed_before == 1
        shared = _counter("serve.dedup_hits") - dedup_before
        cache_like = 7 - shared  # remainder came from runner dedup / cache
        assert shared >= 0 and cache_like >= 0
        bodies = {json.dumps(r, sort_keys=True) for r in responses}
        assert len(bodies) == 1

    def test_mixed_requests_batch(self, client):
        batches_before = _counter("serve.batches")
        payloads = [
            {**PAYLOAD, "scheduler": scheduler, "iterations": iterations}
            for scheduler in ("wfbp", "ddp")
            for iterations in (4, 5)
        ] * 2
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(client.simulate, payloads))
        assert all("result" in r for r in responses)
        batches = _counter("serve.batches") - batches_before
        assert 1 <= batches < len(payloads)

    def test_repeat_after_drain_hits_cache(self, client):
        hits_before = _counter("runner.cache.hits")
        first = client.simulate(PAYLOAD)
        second = client.simulate(PAYLOAD)
        assert _counter("runner.cache.hits") - hits_before >= 1
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestShutdown:
    def test_drain_then_refuse(self, server, client):
        client.simulate(PAYLOAD)  # in-flight work before the drain
        assert client.shutdown()["status"] == "draining"
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                client.health()
                time.sleep(0.05)
            except (urllib.error.URLError, ConnectionError, OSError):
                break
        else:
            pytest.fail("listener still answering after shutdown")
        with pytest.raises(RuntimeError, match="draining"):
            server.batcher.submit(object())

    def test_shutdown_is_idempotent(self, server, client):
        client.simulate(PAYLOAD)
        server.shutdown()
        server.shutdown()
