"""Architecture enumerations must reproduce Table I exactly."""

import pytest

from repro.experiments.paper_data import TABLE1
from repro.models.zoo import MODEL_NAMES, get_model, register_model, table1_rows


class TestTable1Exact:
    """The paper's Table I, checked to the digit."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_layer_count(self, name):
        _, layers, _, _ = TABLE1[name]
        assert get_model(name).num_layers == layers

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_tensor_count(self, name):
        _, _, tensors, _ = TABLE1[name]
        assert get_model(name).num_tensors == tensors

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_parameter_count_within_half_percent(self, name):
        _, _, _, params_millions = TABLE1[name]
        got = get_model(name).num_parameters / 1e6
        assert got == pytest.approx(params_millions, rel=0.005)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_batch_size(self, name):
        batch_size, _, _, _ = TABLE1[name]
        assert get_model(name).default_batch_size == batch_size


class TestArchitectureStructure:
    def test_resnet50_conv_bn_fc_split(self):
        model = get_model("resnet50")
        kinds = [layer.kind for layer in model.layers]
        assert kinds.count("conv") == 53
        assert kinds.count("bn") == 53
        assert kinds.count("fc") == 1

    def test_densenet201_conv_bn_fc_split(self):
        model = get_model("densenet201")
        kinds = [layer.kind for layer in model.layers]
        assert kinds.count("conv") == 200
        assert kinds.count("bn") == 201
        assert kinds.count("fc") == 1

    def test_inception_v4_conv_count(self):
        model = get_model("inception_v4")
        kinds = [layer.kind for layer in model.layers]
        assert kinds.count("conv") == 149
        assert kinds.count("bn") == 149

    def test_bert_base_encoder_structure(self):
        model = get_model("bert_base")
        encoder_layers = [l for l in model.layers if l.name.startswith("encoder.")]
        assert len(encoder_layers) == 12 * 8

    def test_bert_large_doubles_encoder(self):
        base = get_model("bert_base")
        large = get_model("bert_large")
        base_encoder = sum(1 for l in base.layers if l.name.startswith("encoder."))
        large_encoder = sum(1 for l in large.layers if l.name.startswith("encoder."))
        assert large_encoder == 2 * base_encoder

    def test_bert_decoder_weight_tied(self):
        """The MLM decoder contributes only a bias (weight tied)."""
        model = get_model("bert_base")
        decoder = next(l for l in model.layers if l.name == "cls.predictions.decoder")
        assert len(decoder.tensors) == 1
        assert decoder.tensors[0].name.endswith("bias")

    def test_all_models_have_positive_flops(self):
        for name in MODEL_NAMES:
            model = get_model(name)
            assert model.total_flops > 0
            assert all(layer.flops >= 0 for layer in model.layers)

    def test_resnet_flops_plausible(self):
        """ResNet-50 at 224x224 is ~4.1 GMACs ~ 8.2 GFLOPs (2 per MAC)."""
        model = get_model("resnet50")
        assert 7e9 < model.total_flops < 9e9

    def test_densenet_flops_plausible(self):
        """DenseNet-201 is ~4.34 GMACs ~ 8.7 GFLOPs."""
        model = get_model("densenet201")
        assert 8e9 < model.total_flops < 9.5e9

    def test_inception_flops_plausible(self):
        """Inception-v4 at 299x299 is ~12.3 GMACs ~ 24.6 GFLOPs."""
        model = get_model("inception_v4")
        assert 22e9 < model.total_flops < 27e9

    def test_tensor_names_unique_per_model(self):
        for name in MODEL_NAMES:
            tensors = get_model(name).tensors_forward_order()
            names = [t.name for t in tensors]
            assert len(names) == len(set(names))


class TestRegistry:
    def test_aliases(self):
        assert get_model("ResNet-50") is get_model("resnet50")
        assert get_model("BERT-Base") is get_model("bert_base")
        assert get_model("Inception-v4") is get_model("inception_v4")

    def test_models_cached(self):
        assert get_model("resnet50") is get_model("resnet50")

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("alexnet-9000")

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 5
        assert [row["model"] for row in rows] == [
            "ResNet-50", "DenseNet-201", "Inception-v4", "BERT-Base", "BERT-Large",
        ]

    def test_register_custom_model(self):
        from tests.conftest import build_tiny_model

        register_model("tiny_custom_xyz", build_tiny_model)
        assert get_model("tiny_custom_xyz").name == "tiny"
        with pytest.raises(ValueError):
            register_model("tiny_custom_xyz", build_tiny_model)
