"""Test package."""
