"""Unit tests for layer/tensor/model specifications."""

import pytest

from repro.models.layers import (
    GRADIENT_DTYPE_BYTES,
    LayerSpec,
    ModelBuilder,
    ModelSpec,
    TensorSpec,
)


class TestTensorSpec:
    def test_nbytes_is_fp32(self):
        tensor = TensorSpec("t", num_elements=100, layer_index=0)
        assert tensor.nbytes == 100 * GRADIENT_DTYPE_BYTES

    def test_empty_tensor_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("t", num_elements=0, layer_index=0)


class TestLayerSpec:
    def test_parameter_totals(self):
        layer = LayerSpec(
            "l", "conv", 0,
            tensors=(
                TensorSpec("l.w", 10, 0),
                TensorSpec("l.b", 5, 0),
            ),
            flops=1.0,
        )
        assert layer.num_parameters == 15
        assert layer.nbytes == 60

    def test_tensor_layer_index_validated(self):
        with pytest.raises(ValueError):
            LayerSpec("l", "conv", 0, tensors=(TensorSpec("t", 1, 3),), flops=1.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec("l", "conv", 0, tensors=(), flops=-1.0)


class TestModelBuilder:
    def test_conv_parameter_count(self):
        builder = ModelBuilder("m", "M", 8)
        layer = builder.conv("c", cin=3, cout=16, kernel=3, out_hw=10)
        assert layer.num_parameters == 3 * 16 * 9
        assert layer.flops == 2.0 * 3 * 16 * 9 * 100

    def test_asymmetric_kernel(self):
        builder = ModelBuilder("m", "M", 8)
        layer = builder.conv("c", 8, 8, kernel=0, out_hw=4, kernel_h=1, kernel_w=7)
        assert layer.num_parameters == 8 * 8 * 7

    def test_bn_has_weight_and_bias(self):
        builder = ModelBuilder("m", "M", 8)
        layer = builder.bn("b", channels=32, out_hw=5)
        assert [t.name for t in layer.tensors] == ["b.weight", "b.bias"]
        assert layer.num_parameters == 64

    def test_fc_with_and_without_bias(self):
        builder = ModelBuilder("m", "M", 8)
        with_bias = builder.fc("f1", 10, 4)
        without = builder.fc("f2", 10, 4, bias=False)
        assert with_bias.num_parameters == 44
        assert without.num_parameters == 40

    def test_indices_assigned_sequentially(self):
        builder = ModelBuilder("m", "M", 8)
        builder.fc("a", 2, 2)
        builder.fc("b", 2, 2)
        model = builder.build()
        assert [layer.index for layer in model.layers] == [0, 1]


class TestModelSpec:
    def _model(self) -> ModelSpec:
        builder = ModelBuilder("m", "M", 8)
        builder.conv("conv", 3, 8, kernel=3, out_hw=4)
        builder.bn("bn", 8, 4)
        builder.fc("fc", 8, 2)
        return builder.build()

    def test_counts(self):
        model = self._model()
        assert model.num_layers == 3
        # conv weight + bn weight + bn bias + fc weight + fc bias
        assert model.num_tensors == 5

    def test_gradient_bytes(self):
        model = self._model()
        assert model.gradient_bytes == model.num_parameters * 4

    def test_forward_order_preserves_layer_order(self):
        model = self._model()
        names = [t.name for t in model.tensors_forward_order()]
        assert names == ["conv.weight", "bn.weight", "bn.bias", "fc.weight", "fc.bias"]

    def test_backward_order_reverses_everything(self):
        model = self._model()
        names = [t.name for t in model.tensors_backward_order()]
        assert names == ["fc.bias", "fc.weight", "bn.bias", "bn.weight", "conv.weight"]

    def test_backward_order_is_reverse_of_forward(self):
        model = self._model()
        assert model.tensors_backward_order() == list(
            reversed(model.tensors_forward_order())
        )

    def test_layers_backward_order(self):
        model = self._model()
        assert [l.name for l in model.layers_backward_order()] == ["fc", "bn", "conv"]

    def test_duplicate_tensor_names_rejected(self):
        builder = ModelBuilder("m", "M", 8)
        builder.fc("same", 2, 2)
        builder.fc("same", 2, 2)
        with pytest.raises(ValueError):
            builder.build()

    def test_describe(self):
        assert "M:" in self._model().describe()
