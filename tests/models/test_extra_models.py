"""Tests for the extension architectures (VGG-16, GPT-2-small)."""

import pytest

from repro.models.zoo import MODEL_NAMES, get_model
from repro.network.presets import cluster_10gbe
from repro.schedulers.base import simulate


class TestVGG16:
    @pytest.fixture(scope="class")
    def model(self):
        return get_model("vgg16")

    def test_canonical_counts(self, model):
        assert model.num_layers == 16  # 13 conv + 3 fc
        assert model.num_tensors == 32
        assert model.num_parameters == pytest.approx(138.36e6, rel=0.001)

    def test_fc_dominates_parameters(self, model):
        """VGG's signature: ~90% of parameters in the three FC layers —
        the opposite scheduling profile to DenseNet."""
        fc_params = sum(
            l.num_parameters for l in model.layers if l.kind == "fc"
        )
        assert fc_params / model.num_parameters > 0.85

    def test_first_fc_is_giant(self, model):
        largest = max(model.tensors_forward_order(), key=lambda t: t.num_elements)
        assert largest.num_elements == 512 * 7 * 7 * 4096

    def test_schedulable_with_explicit_compute(self, model):
        result = simulate(
            "dear", model, cluster_10gbe(), fusion="buffer",
            buffer_bytes=25e6, iteration_compute=0.3,
        )
        assert result.iteration_time > 0

    def test_alias(self, model):
        assert get_model("VGG-16") is model


class TestGPT2Small:
    @pytest.fixture(scope="class")
    def model(self):
        return get_model("gpt2_small")

    def test_canonical_counts(self, model):
        assert model.num_parameters == pytest.approx(124.44e6, rel=0.001)
        assert model.num_layers == 2 + 12 * 6 + 1
        assert model.num_tensors == 2 + 12 * 12 + 2

    def test_block_parameters_match_bert_base_scale(self, model):
        """GPT-2 and BERT-Base share the 768-hidden transformer block
        (~7.09M parameters per layer)."""
        block0 = [l for l in model.layers if l.name.startswith("h.0.")]
        assert sum(l.num_parameters for l in block0) == pytest.approx(
            7.09e6, rel=0.01
        )

    def test_tied_head_has_no_decoder_tensor(self, model):
        assert not any("lm_head" in t.name for t in model.tensors_forward_order())

    def test_schedulable(self, model):
        result = simulate(
            "wfbp", model, cluster_10gbe(), iteration_compute=0.5
        )
        assert result.iteration_time > 0

    def test_not_in_paper_zoo(self, model):
        assert "gpt2_small" not in MODEL_NAMES
        assert "vgg16" not in MODEL_NAMES

    def test_requires_explicit_compute(self, model):
        with pytest.raises(KeyError):
            simulate("wfbp", model, cluster_10gbe())
