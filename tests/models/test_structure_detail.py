"""Fine-grained structural validation of the architecture enumerations.

Beyond Table I's totals, these check per-component subtotals against
the published architectures — the kind of cross-check that catches an
enumeration that gets the right total for the wrong reasons.
"""

import pytest

from repro.models.zoo import get_model


class TestResNet50Detail:
    @pytest.fixture(scope="class")
    def model(self):
        return get_model("resnet50")

    def test_stem_parameters(self, model):
        conv1 = next(l for l in model.layers if l.name == "conv1")
        assert conv1.num_parameters == 3 * 64 * 49  # 7x7x3 -> 64

    def test_stage_block_counts(self, model):
        for stage, blocks in ((1, 3), (2, 4), (3, 6), (4, 3)):
            convs = [
                l for l in model.layers
                if l.name.startswith(f"layer{stage}.") and l.kind == "conv"
            ]
            # 3 convs per bottleneck + 1 downsample conv in block 0.
            assert len(convs) == 3 * blocks + 1

    def test_classifier_shape(self, model):
        fc = next(l for l in model.layers if l.name == "fc")
        assert fc.num_parameters == 2048 * 1000 + 1000

    def test_largest_tensor_is_fc_weight(self, model):
        largest = max(model.tensors_forward_order(), key=lambda t: t.num_elements)
        # ResNet-50's biggest single tensor is a layer4 3x3 conv
        # (512*512*9 = 2.36M), bigger than the fc (2.048M).
        assert largest.num_elements == 512 * 512 * 9

    def test_downsample_projections(self, model):
        downsamples = [
            l for l in model.layers if "downsample" in l.name and l.kind == "conv"
        ]
        assert len(downsamples) == 4  # one per stage


class TestDenseNet201Detail:
    @pytest.fixture(scope="class")
    def model(self):
        return get_model("densenet201")

    def test_block_layer_counts(self, model):
        for block, layers in ((1, 6), (2, 12), (3, 48), (4, 32)):
            names = {
                l.name.split(".")[2]
                for l in model.layers
                if l.name.startswith(f"features.denseblock{block}.")
            }
            assert len(names) == layers

    def test_feature_growth(self, model):
        """Final norm sees 1920 channels: 896 + 32 x 32 growth."""
        final_norm = next(l for l in model.layers if l.name == "features.norm5")
        assert final_norm.num_parameters == 2 * 1920

    def test_transitions_halve_features(self, model):
        t1 = next(l for l in model.layers if l.name == "features.transition1.conv")
        assert t1.num_parameters == 256 * 128  # 1x1: 256 -> 128

    def test_most_tensors_are_tiny(self, model):
        """The paper's point about DenseNet: hundreds of tiny tensors
        (the 402 BN weight/bias vectors), making it the most
        startup-latency-sensitive model in the zoo."""
        sizes = [t.num_elements for t in model.tensors_forward_order()]
        tiny = sum(1 for s in sizes if s < 2000)
        assert tiny >= 400
        # At 4 bytes each, the median tensor is ~4 KB on the wire.
        median = sorted(sizes)[len(sizes) // 2]
        assert median * 4 < 8192


class TestInceptionV4Detail:
    @pytest.fixture(scope="class")
    def model(self):
        return get_model("inception_v4")

    def test_block_multiplicities(self, model):
        assert sum(
            1 for l in model.layers
            if l.name.startswith("inception_a.") and l.kind == "conv"
        ) == 4 * 7
        assert sum(
            1 for l in model.layers
            if l.name.startswith("inception_b.") and l.kind == "conv"
        ) == 7 * 10
        assert sum(
            1 for l in model.layers
            if l.name.startswith("inception_c.") and l.kind == "conv"
        ) == 3 * 10

    def test_stem_conv_count(self, model):
        assert sum(
            1 for l in model.layers
            if l.name.startswith("stem.") and l.kind == "conv"
        ) == 11

    def test_classifier_input_width(self, model):
        fc = next(l for l in model.layers if l.name == "last_linear")
        assert fc.num_parameters == 1536 * 1000 + 1000


class TestBertDetail:
    @pytest.fixture(scope="class")
    def base(self):
        return get_model("bert_base")

    @pytest.fixture(scope="class")
    def large(self):
        return get_model("bert_large")

    def test_encoder_layer_parameters(self, base):
        """One BERT-Base encoder layer holds ~7.09M parameters."""
        layer0 = [
            l for l in base.layers if l.name.startswith("encoder.layer.0.")
        ]
        total = sum(l.num_parameters for l in layer0)
        assert total == pytest.approx(7.09e6, rel=0.01)

    def test_embedding_dominates(self, base):
        word = next(
            l for l in base.layers if l.name == "embeddings.word_embeddings"
        )
        assert word.num_parameters == 30522 * 768
        largest = max(base.tensors_forward_order(), key=lambda t: t.num_elements)
        assert largest.name.startswith("embeddings.word_embeddings")

    def test_large_layer_parameters(self, large):
        layer0 = [
            l for l in large.layers if l.name.startswith("encoder.layer.0.")
        ]
        total = sum(l.num_parameters for l in layer0)
        assert total == pytest.approx(12.59e6, rel=0.01)

    def test_intermediate_is_4x_hidden(self, base):
        inter = next(
            l for l in base.layers if l.name == "encoder.layer.0.intermediate.dense"
        )
        assert inter.num_parameters == 768 * 3072 + 3072

    def test_parameter_balance_claim(self, base):
        """§VI-G: BERT has 'a very balanced distribution of parameters'
        — encoder layers are identical, so consecutive-layer fusion
        (DeAR-NL) produces near-equal groups."""
        layer_totals = [
            sum(
                l.num_parameters for l in base.layers
                if l.name.startswith(f"encoder.layer.{index}.")
            )
            for index in range(12)
        ]
        assert len(set(layer_totals)) == 1
