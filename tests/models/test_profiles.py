"""Tests for the calibrated timing profiles."""

import pytest

from repro.models.profiles import (
    CALIBRATED_ITERATION_COMPUTE,
    TimingModel,
    batch_scale,
    build_profile,
)
from repro.models.zoo import MODEL_NAMES, get_model


class TestBuildProfile:
    def test_total_matches_calibration(self):
        model = get_model("resnet50")
        profile = build_profile(model)
        assert profile.iteration_compute == pytest.approx(
            CALIBRATED_ITERATION_COMPUTE["resnet50"]
        )

    def test_ff_is_one_third(self):
        """The paper's assumption: FF ~ 1/3 of compute, BP ~ 2/3."""
        profile = build_profile(get_model("bert_base"))
        assert profile.total_ff == pytest.approx(profile.iteration_compute / 3)
        assert profile.total_bp == pytest.approx(2 * profile.total_ff)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_layer_time_positive(self, name):
        profile = build_profile(get_model(name))
        assert all(t > 0 for t in profile.ff_times)
        assert all(t > 0 for t in profile.bp_times)

    def test_flop_heavy_layers_get_more_time(self):
        model = get_model("resnet50")
        profile = build_profile(model)
        heaviest = max(range(model.num_layers), key=lambda i: model.layers[i].flops)
        lightest = min(range(model.num_layers), key=lambda i: model.layers[i].flops)
        assert profile.ff_times[heaviest] > profile.ff_times[lightest]

    def test_override_iteration_compute(self):
        profile = build_profile(get_model("resnet50"), iteration_compute=1.0)
        assert profile.iteration_compute == pytest.approx(1.0)

    def test_uncalibrated_model_requires_override(self):
        from repro.models.layers import ModelBuilder

        builder = ModelBuilder("never_calibrated", "NC", 8)
        builder.fc("fc", 4, 4)
        model = builder.build()
        with pytest.raises(KeyError):
            build_profile(model)
        profile = build_profile(model, iteration_compute=0.1)
        assert profile.iteration_compute == pytest.approx(0.1)

    def test_compute_scale(self):
        base = build_profile(get_model("resnet50"))
        slow = build_profile(get_model("resnet50"), compute_scale=2.0)
        assert slow.iteration_compute == pytest.approx(2 * base.iteration_compute)

    def test_bad_ff_fraction_rejected(self):
        with pytest.raises(ValueError):
            build_profile(get_model("resnet50"), ff_fraction=1.5)

    def test_throughput(self):
        profile = build_profile(get_model("resnet50"))
        assert profile.single_gpu_throughput == pytest.approx(
            64 / profile.iteration_compute
        )


class TestBatchScaling:
    def test_reference_batch_is_unit_scale(self):
        assert batch_scale(64, 64) == pytest.approx(1.0)

    def test_halving_batch_does_not_halve_time(self):
        """The fixed-overhead fraction keeps small batches inefficient."""
        assert batch_scale(32, 64) > 0.5

    def test_doubling_batch_less_than_doubles_time(self):
        assert batch_scale(128, 64) < 2.0

    def test_monotone(self):
        scales = [batch_scale(bs, 64) for bs in (8, 16, 32, 64, 128)]
        assert scales == sorted(scales)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_scale(0, 64)

    def test_profile_uses_batch_scaling(self):
        full = build_profile(get_model("resnet50"), batch_size=64)
        half = build_profile(get_model("resnet50"), batch_size=32)
        assert half.iteration_compute < full.iteration_compute
        assert half.iteration_compute > full.iteration_compute / 2


class TestTimingModel:
    def test_accessors(self):
        timing = TimingModel.for_model(get_model("resnet50"))
        assert timing.t_ff == pytest.approx(timing.profile.total_ff)
        assert timing.t_bp == pytest.approx(timing.profile.total_bp)
        assert timing.ff_time(0) == timing.profile.ff_times[0]
        assert timing.bp_time(5) == timing.profile.bp_times[5]
        assert timing.batch_size == 64

    def test_calibration_derived_from_table2(self):
        """Sanity on the back-derivation: ResNet-50's calibrated compute
        must put its 10GbE S^max near the paper's 61.6."""
        from repro.analysis.speedup import max_speedup_for
        from repro.network.presets import cluster_10gbe

        s_max = max_speedup_for(get_model("resnet50"), cluster_10gbe())
        assert s_max == pytest.approx(61.6, rel=0.02)
