"""Edge-case and rare-branch tests across modules."""

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer
from repro.core.fusion import FusionGroup, FusionPlan
from repro.models.profiles import build_profile
from repro.sim.engine import Simulator
from repro.sim.resources import Stream
from tests.conftest import build_tiny_model


class TestBayesOptEdges:
    def test_all_candidates_observed_falls_back_to_random(self):
        bo = BayesianOptimizer(1.0, 10.0, candidates=4, seed=0, initial=None)
        # Observe every grid candidate; the EI mask then kills them all.
        for x in list(bo._candidates):
            bo.observe(float(x), 1.0)
        suggestion = bo.suggest()
        assert 1.0 <= suggestion <= 10.0

    def test_linear_scale_domain(self):
        bo = BayesianOptimizer(0.5, 2.0, log_scale=False, seed=0, initial=None)
        for _ in range(5):
            x = bo.suggest()
            assert 0.5 <= x <= 2.0
            bo.observe(x, -abs(x - 1.1))

    def test_initial_outside_domain_ignored(self):
        bo = BayesianOptimizer(1.0, 2.0, initial=100.0, seed=0)
        assert 1.0 <= bo.suggest() <= 2.0

    def test_gp_accepts_1d_input_vector(self):
        from repro.bayesopt.gp import GaussianProcess

        gp = GaussianProcess()
        gp.fit(np.array([[0.1, 0.5, 0.9]]), [1.0, 2.0, 1.5])  # row vector
        mean, std = gp.predict(np.array([0.5]))
        assert mean.shape == (1,)


class TestProfileEdges:
    def test_floor_dominated_distribution_spreads_evenly(self):
        model = build_tiny_model()
        # Total compute below the per-layer floors: fall back to even.
        profile = build_profile(model, iteration_compute=1e-6)
        assert max(profile.ff_times) == pytest.approx(min(profile.ff_times))

    def test_zero_weight_layers_handled(self):
        from repro.models.layers import ModelBuilder

        builder = ModelBuilder("zf", "ZF", 8)
        builder.add_layer("a", "conv", [("w", 10)], flops=0.0)
        builder.add_layer("b", "conv", [("w", 10)], flops=0.0)
        profile = build_profile(builder.build(), iteration_compute=0.01)
        assert sum(profile.ff_times) + sum(profile.bp_times) == pytest.approx(0.01)


class TestFusionEdges:
    def test_wrong_group_position_rejected(self):
        model = build_tiny_model()
        tensors = model.tensors_backward_order()
        groups = [FusionGroup(index=1, tensors=tuple(tensors))]  # index != 0
        with pytest.raises(ValueError):
            FusionPlan(model, groups)

    def test_reordered_tensors_rejected(self):
        model = build_tiny_model()
        tensors = list(model.tensors_backward_order())
        tensors[0], tensors[1] = tensors[1], tensors[0]
        # layer_index metadata no longer matches the expected sequence.
        groups = [FusionGroup(index=0, tensors=tuple(tensors))]
        with pytest.raises(ValueError):
            FusionPlan(model, groups)


class TestStreamFailures:
    def test_generator_body_exception_surfaces(self):
        sim = Simulator()
        stream = Stream(sim, "s")

        def bad_body():
            yield 0.5
            raise RuntimeError("kernel fault")

        stream.submit(bad_body(), name="bad")
        with pytest.raises(RuntimeError, match="kernel fault"):
            sim.run()

    def test_failed_gate_propagates(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        gate = sim.event()
        stream.submit(1.0, gate=gate)
        sim.schedule(0.5, lambda: gate.fail(ValueError("dependency died")))
        with pytest.raises(ValueError, match="dependency died"):
            sim.run()


class TestMemoryEdges:
    def test_fusion_scheduler_without_buffer_uses_default(self):
        from repro.analysis.memory import estimate_memory
        from repro.models.zoo import get_model

        estimate = estimate_memory("dear", get_model("resnet50"),
                                   buffer_bytes=None)
        assert estimate.scheduler_overhead == pytest.approx(50e6)

    def test_zero_overhead_can_be_negative_total_positive(self):
        """ZeRO's sharding saving can exceed its buffer cost; the total
        must still be physically positive."""
        from repro.analysis.memory import estimate_memory
        from repro.models.zoo import get_model

        estimate = estimate_memory("zero", get_model("bert_large"),
                                   world_size=64)
        assert estimate.scheduler_overhead < 0
        assert estimate.total > 0


class TestTimingModelEdges:
    def test_compression_model_preserves_cluster_surface(self):
        from repro.compression import CompressionTimeModel
        from repro.network.cost_model import CollectiveTimeModel
        from repro.network.presets import cluster_10gbe

        base = CollectiveTimeModel(cluster_10gbe())
        compressed = CompressionTimeModel(base, density=0.01)
        assert compressed.world_size == base.world_size
        assert compressed.alpha == base.alpha
        assert compressed.min_bandwidth == base.min_bandwidth
        assert compressed.negotiation() == base.negotiation()
        assert "compressed" in compressed.describe()

    def test_fp16_style_expansion_below_one(self):
        from repro.compression import CompressionTimeModel
        from repro.network.cost_model import CollectiveTimeModel
        from repro.network.presets import cluster_10gbe

        base = CollectiveTimeModel(cluster_10gbe())
        fp16 = CompressionTimeModel(base, density=1.0, payload_expansion=0.5)
        assert fp16.wire_ratio == pytest.approx(0.5)
