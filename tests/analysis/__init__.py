"""Test package."""
