"""Tests for the schedule diagnosis tool."""

import pytest

from repro.analysis.diagnosis import diagnose
from repro.models.zoo import get_model
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.schedulers.base import simulate


class TestDiagnose:
    def test_compute_bound_on_fast_network(self):
        result = simulate(
            "dear", get_model("resnet50"), cluster_100gbib(),
            fusion="buffer", buffer_bytes=25e6,
        )
        diagnosis = diagnose(result)
        assert diagnosis.bottleneck == "compute"
        assert "hidden" in diagnosis.suggestion

    def test_communication_bound_on_slow_network(self):
        result = simulate("wfbp", get_model("bert_large"), cluster_10gbe())
        diagnosis = diagnose(result)
        assert diagnosis.bottleneck == "communication"

    def test_overlap_efficiency_bounds(self):
        for scheduler in ("serial", "wfbp", "dear"):
            options = {"fusion": "none"} if scheduler == "dear" else {}
            result = simulate(
                scheduler, get_model("resnet50"), cluster_10gbe(), **options
            )
            diagnosis = diagnose(result)
            assert 0.0 <= diagnosis.overlap_efficiency <= 1.0
            assert 0.0 <= diagnosis.comm_stream_utilisation <= 1.0 + 1e-9

    def test_serial_has_zero_overlap(self):
        result = simulate("serial", get_model("resnet50"), cluster_10gbe())
        diagnosis = diagnose(result)
        assert diagnosis.overlap_efficiency == pytest.approx(0.0, abs=1e-9)

    def test_dear_overlaps_more_than_wfbp(self):
        model = get_model("resnet50")
        wfbp = diagnose(simulate("wfbp", model, cluster_10gbe()))
        dear = diagnose(
            simulate("dear", model, cluster_10gbe(), fusion="none")
        )
        assert dear.overlap_efficiency > wfbp.overlap_efficiency

    def test_collective_count_matches_fusion(self):
        model = get_model("resnet50")
        result = simulate(
            "dear", model, cluster_10gbe(), fusion="buffer", buffer_bytes=25e6
        )
        diagnosis = diagnose(result)
        from repro.core.fusion import buffer_size_groups

        groups = buffer_size_groups(model, 25e6).num_groups
        assert diagnosis.collectives_per_iteration == 2 * groups  # RS + AG

    def test_startup_fraction_with_fabric_info(self):
        model = get_model("densenet201")
        cost = CollectiveTimeModel(cluster_10gbe())
        unfused = simulate("wfbp", model, cluster_10gbe())
        diagnosis = diagnose(
            unfused, alpha=cost.alpha, world_size=cost.world_size
        )
        # 604 tiny tensors on 10GbE: overwhelmingly startup-bound.
        assert diagnosis.startup_fraction > 0.7
        assert "fuse" in diagnosis.suggestion

    def test_startup_fraction_zero_without_fabric_info(self):
        result = simulate("wfbp", get_model("resnet50"), cluster_10gbe())
        assert diagnose(result).startup_fraction == 0.0

    def test_describe_is_readable(self):
        result = simulate("horovod", get_model("bert_base"), cluster_10gbe(),
                          buffer_bytes=25e6)
        text = diagnose(result).describe()
        assert "horovod" in text
        assert "suggestion:" in text
        assert "ms/iteration" in text

    def test_missing_tracer_rejected(self):
        from repro.schedulers.base import single_gpu_result

        result = single_gpu_result(get_model("resnet50"))
        with pytest.raises(ValueError):
            diagnose(result)
