"""Tests for the analytical models (Eq. 6-9) and breakdowns."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.breakdown import breakdown_of
from repro.analysis.optimal import (
    baseline_optimal_time,
    dear_optimal_time,
    saved_time_piecewise,
)
from repro.analysis.speedup import max_speedup, max_speedup_for
from repro.models.zoo import get_model
from repro.network.presets import cluster_100gbib, cluster_10gbe


class TestMaxSpeedup:
    def test_no_communication_gives_linear_scale(self):
        # Infinite bandwidth -> t_rs = t_ag = 0 -> S^max = P
        assert max_speedup(1.0, 2.0, 1e6, bandwidth=1e18, world_size=64) == (
            pytest.approx(64.0)
        )

    def test_comm_dominated_regime(self):
        """When comm >> compute, S^max -> P * compute / t_ar."""
        t_ff, t_bp = 0.1, 0.2
        m, bandwidth = 1.0e9, 1.0e9  # t_ar = 2s >> compute
        result = max_speedup(t_ff, t_bp, m, bandwidth, 64)
        assert result == pytest.approx(64 * 0.3 / 2.0, rel=1e-6)

    def test_paper_table2_resnet_10gbe(self):
        s_max = max_speedup_for(get_model("resnet50"), cluster_10gbe())
        assert s_max == pytest.approx(61.6, rel=0.02)

    def test_paper_table2_bert_base_10gbe(self):
        s_max = max_speedup_for(get_model("bert_base"), cluster_10gbe())
        assert s_max == pytest.approx(25.5, rel=0.02)

    def test_paper_table2_bert_large_both_networks(self):
        assert max_speedup_for(
            get_model("bert_large"), cluster_10gbe()
        ) == pytest.approx(12.1, rel=0.02)
        assert max_speedup_for(
            get_model("bert_large"), cluster_100gbib()
        ) == pytest.approx(51.8, rel=0.02)

    def test_densenet_unconstrained_on_both(self):
        for cluster in (cluster_10gbe(), cluster_100gbib()):
            assert max_speedup_for(get_model("densenet201"), cluster) == (
                pytest.approx(64.0)
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            max_speedup(0.0, 1.0, 1e6, 1e9, 64)
        with pytest.raises(ValueError):
            max_speedup(1.0, 1.0, 1e6, 0.0, 64)
        with pytest.raises(ValueError):
            max_speedup(1.0, 1.0, 1e6, 1e9, 0)

    @given(
        t_ff=st.floats(0.01, 1.0),
        t_bp=st.floats(0.01, 1.0),
        m=st.floats(1e6, 1e9),
        bandwidth=st.floats(1e8, 1e11),
        p=st.integers(2, 256),
    )
    def test_bounded_by_world_size(self, t_ff, t_bp, m, bandwidth, p):
        assert 0 < max_speedup(t_ff, t_bp, m, bandwidth, p) <= p + 1e-9


class TestOptimalTimes:
    def test_eq7_comm_hidden(self):
        assert dear_optimal_time(1.0, 2.0, 0.5, 0.5) == pytest.approx(3.0)

    def test_eq7_comm_dominates(self):
        assert dear_optimal_time(1.0, 2.0, 5.0, 4.0) == pytest.approx(9.0)

    def test_eq8(self):
        assert baseline_optimal_time(1.0, 2.0, 1.0) == pytest.approx(3.0)
        assert baseline_optimal_time(1.0, 2.0, 5.0) == pytest.approx(6.0)

    def test_dear_never_slower_than_baseline_under_assumptions(self):
        """Under t_ar = 2 t_rs = 2 t_ag, t_bp = 2 t_ff: Eq. 7 <= Eq. 8."""
        for t_ff in (0.05, 0.1, 0.5):
            for t_ag in (0.01, 0.1, 0.3, 1.0):
                dear = dear_optimal_time(t_ff, 2 * t_ff, t_ag, t_ag)
                baseline = baseline_optimal_time(t_ff, 2 * t_ff, 2 * t_ag)
                assert dear <= baseline + 1e-12

    def test_eq9_piecewise_cases(self):
        t_ff = 0.1
        assert saved_time_piecewise(t_ff, 0.05) == 0.0
        assert saved_time_piecewise(t_ff, 0.15) == pytest.approx(0.05)
        assert saved_time_piecewise(t_ff, 0.5) == pytest.approx(t_ff)

    @given(t_ff=st.floats(0.001, 1.0), t_ag=st.floats(0.0, 5.0))
    def test_eq9_equals_difference_of_eq7_eq8(self, t_ff, t_ag):
        """Eq. 9 is exactly Eq. 8 minus Eq. 7 under the assumptions."""
        dear = dear_optimal_time(t_ff, 2 * t_ff, t_ag, t_ag)
        baseline = baseline_optimal_time(t_ff, 2 * t_ff, 2 * t_ag)
        assert saved_time_piecewise(t_ff, t_ag) == pytest.approx(
            baseline - dear, abs=1e-12
        )

    @given(t_ff=st.floats(0.001, 1.0), t_ag=st.floats(0.0, 5.0))
    def test_eq9_bounded_by_t_ff(self, t_ff, t_ag):
        """'the saved iteration time can be at most one feed-forward
        computation cost' (§VI-I)."""
        assert 0.0 <= saved_time_piecewise(t_ff, t_ag) <= t_ff + 1e-12

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            dear_optimal_time(-1, 1, 1, 1)
        with pytest.raises(ValueError):
            saved_time_piecewise(1, -1)


class TestBreakdown:
    def test_fields_copied_from_result(self, resnet50, ethernet_cluster):
        from repro.schedulers.base import simulate

        result = simulate("horovod", resnet50, ethernet_cluster, buffer_bytes=25e6)
        breakdown = breakdown_of(result)
        assert breakdown.t_ff == result.t_ff
        assert breakdown.exposed_comm == result.exposed_comm
        assert breakdown.stacked_total == pytest.approx(
            result.t_ff + result.t_bp + result.exposed_comm
        )
        assert breakdown.compute == pytest.approx(result.t_ff + result.t_bp)
        assert 0 <= breakdown.comm_fraction <= 1

    def test_stacked_total_close_to_iteration_for_serialised(self, resnet50,
                                                             ethernet_cluster):
        """For WFBP-family, FF+BP+exposed equals the iteration time."""
        from repro.schedulers.base import simulate

        result = simulate("horovod", resnet50, ethernet_cluster, buffer_bytes=25e6)
        breakdown = breakdown_of(result)
        assert breakdown.stacked_total == pytest.approx(
            result.iteration_time, rel=0.02
        )
