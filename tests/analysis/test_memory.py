"""Tests for the per-GPU memory model."""

import pytest

from repro.analysis.memory import estimate_memory, fits_in
from repro.models.zoo import MODEL_NAMES, get_model


class TestEstimateMemory:
    def test_states_are_three_copies(self):
        model = get_model("resnet50")
        estimate = estimate_memory("wfbp", model)
        assert estimate.model_states == 3 * model.num_parameters * 4

    def test_activations_scale_with_batch(self):
        model = get_model("resnet50")
        full = estimate_memory("wfbp", model, batch_size=64)
        half = estimate_memory("wfbp", model, batch_size=32)
        assert half.activations == pytest.approx(full.activations / 2)

    def test_wfbp_has_no_scheduler_overhead(self):
        estimate = estimate_memory("wfbp", get_model("bert_large"))
        assert estimate.scheduler_overhead == 0.0

    def test_fusion_schedulers_pay_double_buffer(self):
        estimate = estimate_memory("dear", get_model("resnet50"), buffer_bytes=25e6)
        assert estimate.scheduler_overhead == pytest.approx(50e6)

    def test_merging_schedulers_pay_full_gradient_copies(self):
        model = get_model("bert_large")
        for scheduler in ("mg_wfbp", "bytescheduler"):
            estimate = estimate_memory(scheduler, model)
            assert estimate.scheduler_overhead == pytest.approx(
                2 * model.gradient_bytes
            )

    def test_zero_shards_states(self):
        model = get_model("bert_large")
        dense = estimate_memory("dear", model, world_size=64)
        sharded = estimate_memory("zero", model, world_size=64)
        assert sharded.total < dense.total

    def test_zero_sharding_grows_with_world_size(self):
        model = get_model("bert_large")
        small = estimate_memory("zero", model, world_size=4)
        large = estimate_memory("zero", model, world_size=64)
        assert large.total < small.total

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            estimate_memory("astral", get_model("resnet50"))

    def test_total_includes_workspace_and_reserve(self):
        estimate = estimate_memory("wfbp", get_model("resnet50"))
        assert estimate.total > estimate.dynamic


class TestPaperOOMs:
    """Figs. 6/7: exactly two OOM cells on the 11 GB 2080Ti."""

    def test_bytescheduler_ooms_on_bert_large(self):
        assert not fits_in("bytescheduler", get_model("bert_large"))

    def test_mg_wfbp_ooms_on_bert_large(self):
        assert not fits_in("mg_wfbp", get_model("bert_large"))

    @pytest.mark.parametrize("scheduler", ["wfbp", "ddp", "horovod", "dear", "zero"])
    def test_other_schedulers_fit_bert_large(self, scheduler):
        assert fits_in(scheduler, get_model("bert_large"))

    @pytest.mark.parametrize("name", [m for m in MODEL_NAMES if m != "bert_large"])
    @pytest.mark.parametrize("scheduler", ["mg_wfbp", "bytescheduler"])
    def test_no_other_model_ooms(self, scheduler, name):
        assert fits_in(scheduler, get_model(name))

    def test_bigger_device_fixes_it(self):
        assert fits_in("bytescheduler", get_model("bert_large"), device_bytes=24e9)
