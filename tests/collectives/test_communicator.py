"""Tests for the Communicator facade."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.communicator import Communicator


def _buffers(p, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(p)]


ALGORITHM_CASES = [
    ("ring", {}, 6),
    ("halving_doubling", {}, 8),
    ("tree", {}, 6),
    ("hierarchical", {"gpus_per_node": 2}, 6),
]


class TestCommunicator:
    @pytest.mark.parametrize("algorithm,kwargs,p", ALGORITHM_CASES)
    def test_all_reduce_sums(self, algorithm, kwargs, p):
        comm = Communicator(p, algorithm=algorithm, **kwargs)
        buffers = _buffers(p, 33)
        expected = np.sum(buffers, axis=0)
        comm.all_reduce(buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)

    @pytest.mark.parametrize("algorithm,kwargs,p", ALGORITHM_CASES)
    def test_all_reduce_average(self, algorithm, kwargs, p):
        comm = Communicator(p, algorithm=algorithm, **kwargs)
        buffers = _buffers(p, 20)
        expected = np.mean(buffers, axis=0)
        comm.all_reduce(buffers, average=True)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)

    @pytest.mark.parametrize("algorithm,kwargs,p", ALGORITHM_CASES)
    def test_decoupled_pair_equals_fused(self, algorithm, kwargs, p):
        """§III-A for every algorithm family the registry offers."""
        fused = _buffers(p, 41, seed=2)
        split = [np.array(b, copy=True) for b in fused]
        Communicator(p, algorithm=algorithm, **kwargs).all_reduce(fused)
        comm = Communicator(p, algorithm=algorithm, **kwargs)
        comm.reduce_scatter(split)
        comm.all_gather(split)
        for a, b in zip(fused, split):
            np.testing.assert_array_equal(a, b)

    def test_collectives_counted(self):
        comm = Communicator(4)
        buffers = _buffers(4, 8)
        comm.all_reduce(buffers)
        comm.reduce_scatter(buffers)
        comm.all_gather(buffers)
        assert comm.collectives_issued == 3

    def test_stats_accumulate_across_calls(self):
        comm = Communicator(4)
        comm.all_reduce(_buffers(4, 16))
        first = comm.stats.bytes
        comm.all_reduce(_buffers(4, 16))
        assert comm.stats.bytes == 2 * first

    @pytest.mark.parametrize("algorithm,kwargs,p", ALGORITHM_CASES)
    def test_zero_copy_matches_copying_mode(self, algorithm, kwargs, p):
        """Zero-copy results and traffic accounting are bit-identical."""
        expected = np.sum(_buffers(p, 33), axis=0)
        outcomes = {}
        for zero_copy in (False, True):
            comm = Communicator(p, algorithm=algorithm, zero_copy=zero_copy, **kwargs)
            buffers = _buffers(p, 33)
            comm.all_reduce(buffers)
            for buf in buffers:
                np.testing.assert_allclose(buf, expected)
            outcomes[zero_copy] = (comm.stats.messages, comm.stats.bytes)
        assert outcomes[True] == outcomes[False]

    @pytest.mark.parametrize("algorithm,kwargs,p", ALGORITHM_CASES)
    def test_zero_copy_decoupled_pair(self, algorithm, kwargs, p):
        buffers = _buffers(p, 17)
        expected = np.mean(buffers, axis=0)
        comm = Communicator(p, algorithm=algorithm, zero_copy=True, **kwargs)
        comm.reduce_scatter(buffers)
        comm.all_gather(buffers, average=True)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            Communicator(4, algorithm="avian")

    def test_hierarchical_requires_gpus_per_node(self):
        with pytest.raises(ValueError):
            Communicator(8, algorithm="hierarchical")

    def test_hierarchical_divisibility_checked(self):
        with pytest.raises(ValueError):
            Communicator(6, algorithm="hierarchical", gpus_per_node=4)

    @settings(deadline=None, max_examples=15)
    @given(size=st.integers(1, 64), seed=st.integers(0, 50))
    def test_decoupled_average_matches_mean(self, size, seed):
        p = 4
        buffers = _buffers(p, size, seed)
        expected = np.mean(buffers, axis=0)
        comm = Communicator(p)
        comm.reduce_scatter(buffers)
        comm.all_gather(buffers, average=True)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected, rtol=1e-10)
