"""Unit tests for the in-process transport."""

import copy
import pickle

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.collectives.transport import Transport, TransportStats, chunk_offsets


class TestChunkOffsets:
    def test_even_split(self):
        assert chunk_offsets(8, 4) == [0, 2, 4, 6, 8]

    def test_uneven_split_front_loads_extras(self):
        assert chunk_offsets(10, 4) == [0, 3, 6, 8, 10]

    def test_fewer_elements_than_parts(self):
        assert chunk_offsets(2, 4) == [0, 1, 2, 2, 2]

    def test_zero_length(self):
        assert chunk_offsets(0, 3) == [0, 0, 0, 0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_offsets(5, 0)
        with pytest.raises(ValueError):
            chunk_offsets(-1, 2)

    @given(length=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_partition_properties(self, length, parts):
        offsets = chunk_offsets(length, parts)
        assert len(offsets) == parts + 1
        assert offsets[0] == 0 and offsets[-1] == length
        sizes = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(s >= 0 for s in sizes)
        assert max(sizes) - min(sizes) <= 1  # near-equal chunks
        assert sizes == sorted(sizes, reverse=True)  # extras at the front


class TestTransport:
    def test_send_recv_roundtrip(self):
        transport = Transport(2)
        payload = np.arange(5.0)
        transport.send(0, 1, payload)
        received = transport.recv(0, 1)
        np.testing.assert_array_equal(received, payload)

    def test_send_copies_payload(self):
        transport = Transport(2)
        payload = np.zeros(3)
        transport.send(0, 1, payload)
        payload[:] = 99.0
        np.testing.assert_array_equal(transport.recv(0, 1), np.zeros(3))

    def test_fifo_per_channel(self):
        transport = Transport(2)
        transport.send(0, 1, np.array([1.0]))
        transport.send(0, 1, np.array([2.0]))
        assert transport.recv(0, 1)[0] == 1.0
        assert transport.recv(0, 1)[0] == 2.0

    def test_channels_independent(self):
        transport = Transport(3)
        transport.send(0, 2, np.array([7.0]))
        transport.send(1, 2, np.array([8.0]))
        assert transport.recv(1, 2)[0] == 8.0
        assert transport.recv(0, 2)[0] == 7.0

    def test_recv_empty_raises(self):
        with pytest.raises(RuntimeError):
            Transport(2).recv(0, 1)

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            Transport(2).send(1, 1, np.zeros(1))

    def test_rank_bounds_checked(self):
        transport = Transport(2)
        with pytest.raises(ValueError):
            transport.send(0, 2, np.zeros(1))
        with pytest.raises(ValueError):
            transport.recv(-1, 0)

    def test_stats_count_messages_and_bytes(self):
        transport = Transport(2)
        transport.send(0, 1, np.zeros(10))  # 80 bytes float64
        transport.send(1, 0, np.zeros(5))
        transport.recv(0, 1)
        transport.recv(1, 0)
        assert transport.stats.messages == 2
        assert transport.stats.bytes == 120
        assert transport.stats.per_rank_messages[0] == 1
        assert transport.stats.per_rank_bytes[1] == 40
        assert transport.stats.max_rank_bytes() == 80

    def test_pending_counts_undelivered(self):
        transport = Transport(2)
        assert transport.pending() == 0
        transport.send(0, 1, np.zeros(1))
        assert transport.pending() == 1
        transport.recv(0, 1)
        assert transport.pending() == 0

    def test_reset_stats_requires_drained(self):
        transport = Transport(2)
        transport.send(0, 1, np.zeros(1))
        with pytest.raises(RuntimeError):
            transport.reset_stats()
        transport.recv(0, 1)
        transport.reset_stats()
        assert transport.stats.messages == 0

    def test_world_size_validated(self):
        with pytest.raises(ValueError):
            Transport(0)


class TestTransportStatsPickling:
    def test_roundtrip_preserves_counters(self):
        transport = Transport(3)
        transport.send(0, 1, np.zeros(10))
        transport.send(2, 1, np.zeros(5))
        transport.recv(0, 1)
        transport.recv(2, 1)
        restored = pickle.loads(pickle.dumps(transport.stats))
        assert restored == transport.stats
        assert restored.per_rank_bytes == {0: 80, 2: 40}
        assert restored.max_rank_bytes() == 80
        # Auto-zero semantics survive the round trip (Counter, not a
        # plain dict rebuilt without default behaviour).
        assert restored.per_rank_messages[99] == 0

    def test_fresh_stats_roundtrip(self):
        restored = pickle.loads(pickle.dumps(TransportStats()))
        assert restored.messages == 0
        assert restored.max_rank_bytes() == 0
        restored.per_rank_bytes[1] += 7
        assert restored.per_rank_bytes[1] == 7

    def test_deepcopy_is_independent(self):
        stats = TransportStats()
        stats.per_rank_bytes[0] += 8
        clone = copy.deepcopy(stats)
        clone.per_rank_bytes[0] += 1
        assert stats.per_rank_bytes[0] == 8


class TestZeroCopyTransport:
    def test_delivers_readonly_view(self):
        transport = Transport(2, zero_copy=True)
        payload = np.arange(4.0)
        transport.send(0, 1, payload)
        received = transport.recv(0, 1)
        assert received.base is payload or received.base is payload.base
        assert not received.flags.writeable
        with pytest.raises(ValueError):
            received[0] = 1.0

    def test_sender_buffer_stays_writable(self):
        transport = Transport(2, zero_copy=True)
        payload = np.arange(4.0)
        transport.send(0, 1, payload)
        payload[0] = 99.0  # the read-only flag is on the view only
        assert transport.recv(0, 1)[0] == 99.0

    def test_accounting_identical_to_copying_mode(self):
        for zero_copy in (False, True):
            transport = Transport(2, zero_copy=zero_copy)
            transport.send(0, 1, np.zeros(10))
            transport.recv(0, 1)
            assert transport.stats.messages == 1
            assert transport.stats.bytes == 80
            assert transport.stats.per_rank_bytes[0] == 80

    def test_default_mode_still_copies(self):
        transport = Transport(2)
        payload = np.arange(4.0)
        transport.send(0, 1, payload)
        payload[0] = 99.0
        assert transport.recv(0, 1)[0] == 0.0
