"""Value-exact pins for the pairwise personalized exchanges."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.alltoall import pairwise_all_to_all, pairwise_all_to_allv
from repro.collectives.communicator import Communicator
from repro.collectives.transport import Transport, chunk_offsets


def _buffers(p, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(p)]


def _chunk(flat, offsets, index):
    return flat[offsets[index] : offsets[index + 1]]


def _assert_transpose(sends, received, p, size):
    """Pin: rank i's segment j == rank j's send chunk i, bit-exact."""
    offsets = chunk_offsets(size, p)
    sizes = [offsets[k + 1] - offsets[k] for k in range(p)]
    for i in range(p):
        assert received[i].size == p * sizes[i]
        for j in range(p):
            np.testing.assert_array_equal(
                received[i][j * sizes[i] : (j + 1) * sizes[i]],
                _chunk(sends[j], offsets, i),
            )


class TestPairwiseAllToAll:
    def test_transpose_pin(self):
        p, size = 5, 23
        sends = _buffers(p, size)
        received = pairwise_all_to_all(Transport(p), sends)
        _assert_transpose(sends, received, p, size)

    def test_sends_untouched(self):
        p = 4
        sends = _buffers(p, 16)
        copies = [buf.copy() for buf in sends]
        pairwise_all_to_all(Transport(p), sends)
        for buf, copy in zip(sends, copies):
            np.testing.assert_array_equal(buf, copy)

    def test_explicit_recv_buffers_filled(self):
        p = 3
        sends = _buffers(p, 9)
        recvs = [np.zeros(9) for _ in range(p)]
        out = pairwise_all_to_all(Transport(p), sends, recv_buffers=recvs)
        for returned, mine in zip(out, recvs):
            assert returned is mine or returned.base is mine

    def test_shape_mismatch_rejected(self):
        p = 3
        sends = [np.zeros(8), np.zeros(8), np.zeros(7)]
        with pytest.raises(ValueError, match="shape"):
            pairwise_all_to_all(Transport(p), sends)

    def test_wrong_buffer_count_rejected(self):
        with pytest.raises(ValueError, match="expected 4"):
            pairwise_all_to_all(Transport(4), _buffers(3, 8))

    @settings(max_examples=20, deadline=None)
    @given(p=st.integers(2, 8), size=st.integers(1, 40))
    def test_transpose_pin_any_shape(self, p, size):
        # size < p exercises empty chunks, size % p != 0 uneven ones.
        sends = _buffers(p, size, seed=size)
        received = pairwise_all_to_all(Transport(p), sends)
        _assert_transpose(sends, received, p, size)


class TestPairwiseAllToAllV:
    def test_uniform_counts_match_all_to_all(self):
        """allv with array_split counts is bit-identical to all_to_all."""
        p, size = 4, 18
        sends = _buffers(p, size)
        offsets = chunk_offsets(size, p)
        counts = [
            [offsets[k + 1] - offsets[k] for k in range(p)] for _ in range(p)
        ]
        uniform = pairwise_all_to_all(Transport(p), sends)
        variable = pairwise_all_to_allv(Transport(p), sends, counts)
        for a, b in zip(uniform, variable):
            np.testing.assert_array_equal(a, b)

    def test_skewed_counts_value_exact(self):
        """rank i's segment from rank j == rank j's segment for rank i."""
        p = 3
        counts = [[0, 4, 1], [2, 3, 0], [5, 1, 2]]
        rng = np.random.default_rng(7)
        sends = [rng.normal(size=sum(row)) for row in counts]
        received = pairwise_all_to_allv(Transport(p), sends, counts)
        for i in range(p):
            start = 0
            for j in range(p):
                segment = received[i][start : start + counts[j][i]]
                src_start = sum(counts[j][:i])
                np.testing.assert_array_equal(
                    segment, sends[j][src_start : src_start + counts[j][i]]
                )
                start += counts[j][i]

    def test_zero_count_pairs_skip_the_wire(self):
        p = 2
        counts = [[3, 0], [0, 2]]  # nothing crosses ranks
        sends = [np.arange(3.0), np.arange(2.0)]
        transport = Transport(p)
        received = pairwise_all_to_allv(transport, sends, counts)
        assert transport.stats.messages == 0
        np.testing.assert_array_equal(received[0], sends[0])
        np.testing.assert_array_equal(received[1], sends[1])

    def test_count_total_must_match_buffer(self):
        with pytest.raises(ValueError, match="counts total"):
            pairwise_all_to_allv(
                Transport(2), [np.zeros(5), np.zeros(4)], [[2, 2], [2, 2]]
            )

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            pairwise_all_to_allv(
                Transport(2), [np.zeros(4), np.zeros(4)], [[5, -1], [2, 2]]
            )

    def test_count_row_length_checked(self):
        with pytest.raises(ValueError, match="send counts"):
            pairwise_all_to_allv(
                Transport(2), [np.zeros(4), np.zeros(4)], [[4], [2, 2]]
            )


class TestCommunicatorSurface:
    def test_all_to_all_counts_traffic(self):
        comm = Communicator(4)
        received = comm.all_to_all(_buffers(4, 16))
        assert len(received) == 4
        assert comm.stats.bytes > 0
        assert comm.collectives_issued == 1

    @pytest.mark.parametrize("algorithm", Communicator.ALGORITHMS)
    def test_every_algorithm_family_shares_the_schedule(self, algorithm):
        # The data level has one correct answer; algorithms differ only
        # in the cost model.
        sends = _buffers(4, 12, seed=3)
        baseline = Communicator(4).all_to_all(sends)
        other = Communicator(
            4, algorithm=algorithm,
            gpus_per_node=2 if algorithm == "hierarchical" else None,
        ).all_to_all(sends)
        for a, b in zip(baseline, other):
            np.testing.assert_array_equal(a, b)
