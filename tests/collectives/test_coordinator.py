"""Tests for the data-level readiness coordinator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.collectives.coordinator import ReadinessCoordinator, _encode
from repro.collectives.transport import Transport


class TestCoordinator:
    def test_all_ready_released_in_one_cycle(self):
        coordinator = ReadinessCoordinator(Transport(4))
        for rank in range(4):
            coordinator.report(rank, ["a", "b"])
        assert set(coordinator.cycle()) == {"a", "b"}
        assert coordinator.pending_anywhere() == set()

    def test_partially_ready_held_back(self):
        coordinator = ReadinessCoordinator(Transport(3))
        coordinator.report(0, ["a", "b"])
        coordinator.report(1, ["a"])
        coordinator.report(2, ["a", "b"])
        assert coordinator.cycle() == ["a"]
        assert coordinator.pending_anywhere() == {"b"}

    def test_held_tensor_released_once_everyone_reports(self):
        coordinator = ReadinessCoordinator(Transport(2))
        coordinator.report(0, ["x"])
        assert coordinator.cycle() == []
        coordinator.report(1, ["x"])
        assert coordinator.cycle() == ["x"]

    def test_response_order_is_rank0_arrival_order(self):
        coordinator = ReadinessCoordinator(Transport(2))
        coordinator.report(0, ["late"])
        coordinator.cycle()  # 'late' pending, enters arrival order
        coordinator.report(0, ["early"])
        coordinator.report(1, ["early", "late"])
        assert coordinator.cycle() == ["late", "early"]

    def test_consistency_under_any_report_order(self):
        """The essential property: the agreed order is independent of
        the order individual ranks discovered readiness."""
        def agreed(report_orders: list[list[str]]) -> list[str]:
            coordinator = ReadinessCoordinator(Transport(len(report_orders)))
            for rank, names in enumerate(report_orders):
                coordinator.report(rank, names)
            return coordinator.cycle()

        forward = agreed([["a", "b", "c"], ["a", "b", "c"], ["a", "b", "c"]])
        shuffled = agreed([["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"]])
        assert forward == shuffled

    def test_cycle_message_count(self):
        """One cycle = (P-1) gathers + (P-1) broadcasts through rank 0."""
        transport = Transport(8)
        coordinator = ReadinessCoordinator(transport)
        for rank in range(8):
            coordinator.report(rank, ["t"])
        coordinator.cycle()
        assert transport.stats.messages == 2 * 7
        assert transport.pending() == 0

    def test_cycle_wire_bytes_pinned(self):
        """Pins the exact wire traffic of one cycle: (P-1) report
        payloads in, (P-1) copies of one response payload out.  The
        broadcast encodes its payload once, but every destination is
        still charged the full payload size — an optimisation of the
        coordinator's hot loop must never change the accounted bytes."""
        world = 5
        transport = Transport(world)
        coordinator = ReadinessCoordinator(transport)
        for rank in range(world):
            coordinator.report(rank, ["alpha", "beta"])
        response = coordinator.cycle()
        report_bytes = _encode(sorted(["alpha", "beta"])).nbytes
        response_bytes = _encode(response).nbytes
        expected = (world - 1) * (report_bytes + response_bytes)
        assert transport.stats.bytes == expected
        # Every destination is charged individually, not just rank 0.
        assert transport.stats.per_rank_bytes[0] == (world - 1) * response_bytes

    def test_duplicate_reports_idempotent(self):
        coordinator = ReadinessCoordinator(Transport(2))
        coordinator.report(0, ["a"])
        coordinator.report(0, ["a"])
        coordinator.report(1, ["a"])
        assert coordinator.cycle() == ["a"]

    def test_cycles_counted(self):
        coordinator = ReadinessCoordinator(Transport(2))
        coordinator.cycle()
        coordinator.cycle()
        assert coordinator.cycles == 2

    @settings(deadline=None, max_examples=25)
    @given(
        world=st.integers(2, 6),
        tensors=st.lists(
            st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5,
            unique=True,
        ),
        seed=st.integers(0, 100),
    )
    def test_eventual_release_property(self, world, tensors, seed):
        """Every tensor reported by all ranks (in any per-rank order)
        is eventually released, exactly once, in the same global order."""
        rng = np.random.default_rng(seed)
        coordinator = ReadinessCoordinator(Transport(world))
        per_rank = [list(tensors) for _ in range(world)]
        for names in per_rank:
            rng.shuffle(names)

        released: list[str] = []
        cursor = [0] * world
        for _ in range(len(tensors) + 1):  # enough cycles to drain
            for rank in range(world):
                take = rng.integers(0, len(tensors) - cursor[rank] + 1)
                coordinator.report(
                    rank, per_rank[rank][cursor[rank] : cursor[rank] + take]
                )
                cursor[rank] += take
            released.extend(coordinator.cycle())
        for rank in range(world):
            coordinator.report(rank, per_rank[rank][cursor[rank]:])
        released.extend(coordinator.cycle())

        assert sorted(released) == sorted(tensors)
        assert len(released) == len(set(released))
