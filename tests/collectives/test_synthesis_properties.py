"""Hypothesis property suite for schedule synthesis.

Random topologies x world sizes (including non-power-of-two worlds,
non-uniform groups, and lengths that split unevenly — or not at all —
across chunks):

- every synthesized schedule passes the set-algebra verifier;
- synthesized RS followed by synthesized AG is bit-exact against the
  synthesized ``all_reduce`` AND against the plain numpy sum (integer
  payloads make float64 addition exact regardless of order);
- step counts equal the synthesizer's declared latency/bandwidth
  bounds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.collectives.synthesis import (
    Topology,
    declared_step_bound,
    run_schedule,
    synthesize,
    verify_schedule,
)
from repro.collectives.transport import Transport

#: Random group partitions: uniform shapes (the two-level path) and
#: arbitrary non-uniform splits (the flat fallback), worlds 2..12.
uniform_topologies = st.builds(
    Topology.from_shape,
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
).filter(lambda topo: topo.world_size >= 2)
grouped_topologies = st.lists(
    st.integers(min_value=1, max_value=5), min_size=1, max_size=4
).filter(lambda sizes: 2 <= sum(sizes) <= 12).map(Topology.grouped)
topologies = st.one_of(uniform_topologies, grouped_topologies)

objectives = st.sampled_from(["latency", "bandwidth"])


def _integer_buffers(topo, length, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-8, 8, size=(topo.world_size, length)).astype(np.float64)
    return data, [data[rank].copy() for rank in range(topo.world_size)]


@settings(deadline=None, max_examples=40)
@given(topo=topologies, objective=objectives,
       length=st.integers(min_value=0, max_value=40),
       seed=st.integers(min_value=0, max_value=99))
def test_rs_then_ag_bit_exact_vs_all_reduce(topo, objective, length, seed):
    data, fused = _integer_buffers(topo, length, seed)
    run_schedule(Transport(topo.world_size), fused,
                 synthesize(topo, "all_reduce", objective))
    _, pair = _integer_buffers(topo, length, seed)
    transport = Transport(topo.world_size)
    run_schedule(transport, pair, synthesize(topo, "reduce_scatter", objective))
    run_schedule(transport, pair, synthesize(topo, "all_gather", objective))
    assert not transport.pending()
    want = data.sum(axis=0)
    for fused_buf, pair_buf in zip(fused, pair):
        np.testing.assert_array_equal(pair_buf, fused_buf)
        np.testing.assert_array_equal(fused_buf, want)


@settings(deadline=None, max_examples=40)
@given(topo=topologies, objective=objectives)
def test_schedules_verify_and_match_declared_bounds(topo, objective):
    for op in ("reduce_scatter", "all_gather", "all_reduce"):
        schedule = synthesize(topo, op, objective)
        verify_schedule(schedule)
        bound = declared_step_bound(topo, op, objective)
        assert schedule.num_steps == bound
        assert schedule.meta["step_bound"] == bound


@settings(deadline=None, max_examples=25)
@given(topo=topologies, seed=st.integers(min_value=0, max_value=99))
def test_latency_and_bandwidth_agree_on_values(topo, seed):
    # Different schedules, same collective: results must be identical
    # (integer payloads, so no float-ordering slack is needed).
    length = 17
    _, lat = _integer_buffers(topo, length, seed)
    run_schedule(Transport(topo.world_size), lat,
                 synthesize(topo, "all_reduce", "latency"))
    _, bw = _integer_buffers(topo, length, seed)
    run_schedule(Transport(topo.world_size), bw,
                 synthesize(topo, "all_reduce", "bandwidth"))
    for lat_buf, bw_buf in zip(lat, bw):
        np.testing.assert_array_equal(lat_buf, bw_buf)
