"""Test package."""
