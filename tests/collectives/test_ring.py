"""Unit and property tests for the ring collectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.ring import (
    owned_chunk,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
)
from repro.collectives.transport import Transport, chunk_offsets


def _random_buffers(p: int, size: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(p)]


class TestRingReduceScatter:
    def test_owned_chunks_hold_full_sums(self):
        p, size = 4, 12
        transport = Transport(p)
        buffers = _random_buffers(p, size)
        expected = np.sum(buffers, axis=0)
        owned = ring_reduce_scatter(transport, buffers)
        offsets = chunk_offsets(size, p)
        for rank in range(p):
            chunk = owned_chunk(rank, p)
            np.testing.assert_allclose(
                owned[rank], expected[offsets[chunk] : offsets[chunk + 1]]
            )

    def test_message_count_is_p_minus_1_rounds(self):
        p = 8
        transport = Transport(p)
        ring_reduce_scatter(transport, _random_buffers(p, 64))
        assert transport.stats.messages == p * (p - 1)
        for rank in range(p):
            assert transport.stats.per_rank_messages[rank] == p - 1

    def test_per_rank_volume_matches_cost_model(self):
        """Each rank sends (P-1)/P of the buffer: the Eq. 3 volume."""
        p, size = 8, 64
        transport = Transport(p)
        buffers = _random_buffers(p, size)
        nbytes = buffers[0].nbytes
        ring_reduce_scatter(transport, buffers)
        for rank in range(p):
            assert transport.stats.per_rank_bytes[rank] == nbytes * (p - 1) // p

    def test_no_stranded_messages(self):
        transport = Transport(5)
        ring_reduce_scatter(transport, _random_buffers(5, 23))
        assert transport.pending() == 0

    def test_uneven_sizes_supported(self):
        p = 4
        for size in (1, 3, 5, 7, 15):
            transport = Transport(p)
            buffers = _random_buffers(p, size, seed=size)
            expected = np.sum(buffers, axis=0)
            owned = ring_reduce_scatter(transport, buffers)
            offsets = chunk_offsets(size, p)
            for rank in range(p):
                chunk = owned_chunk(rank, p)
                np.testing.assert_allclose(
                    owned[rank], expected[offsets[chunk] : offsets[chunk + 1]]
                )

    def test_mismatched_shapes_rejected(self):
        transport = Transport(2)
        with pytest.raises(ValueError):
            ring_reduce_scatter(transport, [np.zeros(4), np.zeros(5)])

    def test_wrong_buffer_count_rejected(self):
        transport = Transport(3)
        with pytest.raises(ValueError):
            ring_reduce_scatter(transport, [np.zeros(4)] * 2)


class TestRingAllReduce:
    def test_matches_numpy_sum(self):
        p, size = 4, 37
        transport = Transport(p)
        buffers = _random_buffers(p, size)
        expected = np.sum(buffers, axis=0)
        ring_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)

    def test_two_ranks(self):
        transport = Transport(2)
        buffers = [np.array([1.0, 2.0]), np.array([10.0, 20.0])]
        ring_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, [11.0, 22.0])

    def test_multidimensional_buffers(self):
        p = 3
        transport = Transport(p)
        rng = np.random.default_rng(1)
        buffers = [rng.normal(size=(4, 5)) for _ in range(p)]
        expected = np.sum(buffers, axis=0)
        ring_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)

    def test_total_volume_matches_eq5(self):
        """Total bytes sent per rank = 2 (P-1)/P d (the Eq. 5 volume)."""
        p, size = 8, 64
        transport = Transport(p)
        buffers = _random_buffers(p, size)
        nbytes = buffers[0].nbytes
        ring_all_reduce(transport, buffers)
        for rank in range(p):
            assert transport.stats.per_rank_bytes[rank] == 2 * nbytes * (p - 1) // p

    @settings(deadline=None, max_examples=30)
    @given(
        p=st.integers(2, 9),
        size=st.integers(1, 100),
        seed=st.integers(0, 1000),
    )
    def test_allreduce_correct_for_any_shape(self, p, size, seed):
        transport = Transport(p)
        buffers = _random_buffers(p, size, seed=seed)
        expected = np.sum(buffers, axis=0)
        ring_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected, rtol=1e-10)
        assert transport.pending() == 0


class TestDecouplingEquivalence:
    """The heart of §III-A: RS followed by AG == fused all-reduce."""

    @settings(deadline=None, max_examples=30)
    @given(
        p=st.integers(2, 8),
        size=st.integers(1, 80),
        seed=st.integers(0, 1000),
    )
    def test_rs_then_ag_equals_allreduce(self, p, size, seed):
        buffers_fused = _random_buffers(p, size, seed=seed)
        buffers_split = [np.array(b, copy=True) for b in buffers_fused]

        ring_all_reduce(Transport(p), buffers_fused)

        transport = Transport(p)
        ring_reduce_scatter(transport, buffers_split)
        ring_all_gather(transport, buffers_split)

        for fused, split in zip(buffers_fused, buffers_split):
            np.testing.assert_array_equal(fused, split)  # bit-identical

    def test_split_phases_same_traffic_as_fused(self):
        """Decoupling costs zero extra messages and zero extra bytes."""
        p, size = 6, 48
        fused_transport = Transport(p)
        ring_all_reduce(fused_transport, _random_buffers(p, size))

        split_transport = Transport(p)
        buffers = _random_buffers(p, size)
        ring_reduce_scatter(split_transport, buffers)
        ring_all_gather(split_transport, buffers)

        assert split_transport.stats.messages == fused_transport.stats.messages
        assert split_transport.stats.bytes == fused_transport.stats.bytes
