"""Tests for tree, halving-doubling, hierarchical, and naive collectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.halving_doubling import (
    halving_doubling_all_reduce,
    recursive_doubling_all_gather,
    recursive_halving_reduce_scatter,
)
from repro.collectives.hierarchical import (
    hierarchical_all_gather,
    hierarchical_all_reduce,
    hierarchical_reduce_scatter,
)
from repro.collectives.naive import (
    naive_all_gather,
    naive_all_reduce,
    naive_reduce_scatter,
)
from repro.collectives.transport import Transport, chunk_offsets
from repro.collectives.tree import binomial_broadcast, binomial_reduce, tree_all_reduce


def _buffers(p, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(p)]


class TestNaive:
    def test_all_reduce_is_sum(self):
        p = 5
        transport = Transport(p)
        buffers = _buffers(p, 17)
        expected = np.sum(buffers, axis=0)
        naive_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)

    def test_reduce_scatter_ownership_convention(self):
        p = 4
        transport = Transport(p)
        buffers = _buffers(p, 16)
        expected = np.sum(buffers, axis=0)
        owned = naive_reduce_scatter(transport, buffers)
        offsets = chunk_offsets(16, p)
        for rank in range(p):
            chunk = (rank + 1) % p
            np.testing.assert_allclose(
                owned[rank], expected[offsets[chunk] : offsets[chunk + 1]]
            )

    def test_all_gather_concatenates(self):
        p = 3
        transport = Transport(p)
        chunks = [np.full(2, float(rank)) for rank in range(p)]
        gathered = naive_all_gather(transport, chunks)
        expected = np.array([0.0, 0.0, 1.0, 1.0, 2.0, 2.0])
        for result in gathered:
            np.testing.assert_allclose(result, expected)


class TestTree:
    def test_reduce_accumulates_at_root(self):
        p = 7  # non power of two
        transport = Transport(p)
        buffers = _buffers(p, 9)
        expected = np.sum(buffers, axis=0)
        binomial_reduce(transport, buffers, root=0)
        np.testing.assert_allclose(buffers[0], expected)

    def test_reduce_nonzero_root(self):
        p = 5
        transport = Transport(p)
        buffers = _buffers(p, 9)
        expected = np.sum(buffers, axis=0)
        binomial_reduce(transport, buffers, root=3)
        np.testing.assert_allclose(buffers[3], expected)

    def test_broadcast_from_root(self):
        p = 6
        transport = Transport(p)
        buffers = [np.zeros(4) for _ in range(p)]
        buffers[2][:] = 42.0
        binomial_broadcast(transport, buffers, root=2)
        for buf in buffers:
            np.testing.assert_allclose(buf, 42.0)

    def test_reduce_message_count_is_p_minus_1(self):
        p = 8
        transport = Transport(p)
        binomial_reduce(transport, _buffers(p, 4))
        assert transport.stats.messages == p - 1

    def test_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            binomial_reduce(Transport(4), _buffers(4, 4), root=4)

    @settings(deadline=None, max_examples=20)
    @given(p=st.integers(2, 12), size=st.integers(1, 40), seed=st.integers(0, 99))
    def test_tree_allreduce_matches_sum(self, p, size, seed):
        transport = Transport(p)
        buffers = _buffers(p, size, seed)
        expected = np.sum(buffers, axis=0)
        tree_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected, rtol=1e-10)
        assert transport.pending() == 0

    def test_decoupling_reduce_then_broadcast(self):
        """The tree decoupling point the related-work section suggests."""
        p = 8
        fused = _buffers(p, 21, seed=3)
        split = [np.array(b, copy=True) for b in fused]
        tree_all_reduce(Transport(p), fused)
        transport = Transport(p)
        binomial_reduce(transport, split)
        binomial_broadcast(transport, split)
        for a, b in zip(fused, split):
            np.testing.assert_array_equal(a, b)


class TestHalvingDoubling:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_halving_reduce_scatter(Transport(6), _buffers(6, 8))

    def test_rs_ownership_block_i_at_rank_i(self):
        p = 8
        transport = Transport(p)
        buffers = _buffers(p, 32)
        expected = np.sum(buffers, axis=0)
        owned = recursive_halving_reduce_scatter(transport, buffers)
        offsets = chunk_offsets(32, p)
        for rank in range(p):
            np.testing.assert_allclose(
                owned[rank], expected[offsets[rank] : offsets[rank + 1]]
            )

    def test_rs_round_count_is_log2(self):
        p = 16
        transport = Transport(p)
        recursive_halving_reduce_scatter(transport, _buffers(p, 64))
        # log2(16) = 4 rounds, each rank sends one message per round
        for rank in range(p):
            assert transport.stats.per_rank_messages[rank] == 4

    @settings(deadline=None, max_examples=20)
    @given(
        log_p=st.integers(1, 4), size=st.integers(1, 60), seed=st.integers(0, 99)
    )
    def test_allreduce_matches_sum(self, log_p, size, seed):
        p = 2**log_p
        transport = Transport(p)
        buffers = _buffers(p, size, seed)
        expected = np.sum(buffers, axis=0)
        halving_doubling_all_reduce(transport, buffers)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected, rtol=1e-10)
        assert transport.pending() == 0

    def test_decoupling_equivalence(self):
        p = 8
        fused = _buffers(p, 40, seed=5)
        split = [np.array(b, copy=True) for b in fused]
        halving_doubling_all_reduce(Transport(p), fused)
        transport = Transport(p)
        recursive_halving_reduce_scatter(transport, split)
        recursive_doubling_all_gather(transport, split)
        for a, b in zip(fused, split):
            np.testing.assert_array_equal(a, b)


class TestHierarchical:
    @settings(deadline=None, max_examples=20)
    @given(
        nodes=st.integers(1, 4),
        gpus=st.integers(1, 4),
        size=st.integers(1, 50),
        seed=st.integers(0, 99),
    )
    def test_allreduce_matches_sum(self, nodes, gpus, size, seed):
        p = nodes * gpus
        if p < 2:
            return
        transport = Transport(p)
        buffers = _buffers(p, size, seed)
        expected = np.sum(buffers, axis=0)
        hierarchical_all_reduce(transport, buffers, gpus_per_node=gpus)
        for buf in buffers:
            np.testing.assert_allclose(buf, expected, rtol=1e-10)
        assert transport.pending() == 0

    def test_decoupling_equivalence(self):
        nodes, gpus = 4, 4
        p = nodes * gpus
        fused = _buffers(p, 64, seed=7)
        split = [np.array(b, copy=True) for b in fused]
        hierarchical_all_reduce(Transport(p), fused, gpus_per_node=gpus)
        transport = Transport(p)
        hierarchical_reduce_scatter(transport, split, gpus_per_node=gpus)
        hierarchical_all_gather(transport, split, gpus_per_node=gpus)
        for a, b in zip(fused, split):
            np.testing.assert_array_equal(a, b)

    def test_indivisible_world_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_all_reduce(Transport(6), _buffers(6, 8), gpus_per_node=4)

    def test_fewer_rounds_than_flat_ring_same_volume(self):
        """Both schemes are bandwidth-optimal (identical total bytes),
        but the hierarchical rings need far fewer messages — the
        latency advantage of Mikami et al. on multi-node clusters."""
        from repro.collectives.ring import ring_all_reduce

        nodes, gpus = 4, 4
        p = nodes * gpus
        flat = Transport(p)
        ring_all_reduce(flat, _buffers(p, 160))
        hier = Transport(p)
        hierarchical_all_reduce(hier, _buffers(p, 160), gpus_per_node=gpus)
        assert hier.stats.bytes == flat.stats.bytes
        assert hier.stats.messages < flat.stats.messages
