"""Synthesized schedules: IR contracts, verification algebra, execution."""

import numpy as np
import pytest

from repro.collectives.ring import ring_all_reduce
from repro.collectives.synthesis import (
    ChunkSpec,
    Schedule,
    ScheduleError,
    Step,
    Topology,
    clear_schedule_cache,
    declared_step_bound,
    run_schedule,
    schedule_for,
    schedule_for_cluster,
    synthesize,
    verify_schedule,
)
from repro.collectives.transport import Transport
from repro.network.presets import cluster_10gbe

TOPOLOGIES = [
    Topology.flat(2),
    Topology.flat(5),
    Topology.flat(8),
    Topology.from_shape(2, 3),
    Topology.from_shape(4, 4),
    Topology.from_shape(3, 3),
    Topology.grouped([2, 3, 1]),
]


class TestTopology:
    def test_shapes_and_edges(self):
        topo = Topology.from_shape(3, 4)
        assert topo.world_size == 12
        assert topo.nodes == 3
        assert topo.multi_node and topo.uniform
        assert topo.node_of[0] == 0 and topo.node_of[11] == 2

    def test_grouped_non_uniform(self):
        topo = Topology.grouped([2, 3])
        assert not topo.uniform
        assert topo.node_of == (0, 0, 1, 1, 1)

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            Topology(groups=((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            Topology(groups=((0, 2),))
        with pytest.raises(ValueError):
            Topology(groups=())

    def test_from_cluster_block_placement(self):
        cluster = cluster_10gbe(nodes=4, gpus_per_node=2)
        topo = Topology.from_cluster(cluster)
        assert topo.groups == ((0, 1), (2, 3), (4, 5), (6, 7))
        assert topo.intra_link is cluster.intra_link
        assert topo.inter_link is cluster.inter_link


class TestChunkSpec:
    def test_flat_offsets_match_array_split(self):
        spec = ChunkSpec(factors=(4,))
        assert spec.offsets(10) == [0, 3, 6, 8, 10]

    def test_nested_differs_from_flat_on_uneven_lengths(self):
        nested = ChunkSpec(factors=(2, 3))
        flat = ChunkSpec(factors=(6,))
        assert nested.count == flat.count == 6
        assert nested.offsets(8) != flat.offsets(8)
        assert nested.offsets(8)[-1] == 8

    def test_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            ChunkSpec(factors=())
        with pytest.raises(ValueError):
            ChunkSpec(factors=(2, 2, 2))
        with pytest.raises(ValueError):
            ChunkSpec(factors=(0,))


class TestVerifier:
    def test_accepts_every_synthesized_schedule(self):
        for topo in TOPOLOGIES:
            for objective in ("latency", "bandwidth"):
                for op in ("reduce_scatter", "all_gather", "all_reduce"):
                    verify_schedule(synthesize(topo, op, objective))

    def test_rejects_double_counted_reduce(self):
        # Both ranks push their chunk 0 into rank 2's chunk 0 twice.
        topo = Topology.flat(3)
        steps = (
            Step([0], [2], [0], [1], [True]),
            Step([0], [2], [0], [1], [True]),  # second add double-counts rank 0
        )
        schedule = Schedule(
            op="reduce_scatter", objective="latency", topology=topo,
            chunks=ChunkSpec(factors=(1,)), steps=steps,
            owner=np.array([2]), rs_steps=2,
        )
        with pytest.raises(ScheduleError, match="double-counts"):
            verify_schedule(schedule)

    def test_rejects_incomplete_reduction(self):
        topo = Topology.flat(3)
        schedule = Schedule(
            op="reduce_scatter", objective="latency", topology=topo,
            chunks=ChunkSpec(factors=(1,)),
            steps=(Step([0], [2], [0], [1], [True]),),
            owner=np.array([2]), rs_steps=1,
        )
        with pytest.raises(ScheduleError, match="holds contributions"):
            verify_schedule(schedule)

    def test_rejects_gather_of_unreduced_data(self):
        # Rank 1 forwards chunk 0 before ever receiving the final value.
        topo = Topology.flat(3)
        schedule = Schedule(
            op="all_gather", objective="latency", topology=topo,
            chunks=ChunkSpec(factors=(1,)),
            steps=(Step([1], [2], [0], [1], [False]),),
            owner=np.array([0]), rs_steps=0,
        )
        with pytest.raises(ScheduleError, match="before holding"):
            verify_schedule(schedule)

    def test_rejects_reduce_in_gather_phase(self):
        topo = Topology.flat(2)
        schedule = Schedule(
            op="all_gather", objective="latency", topology=topo,
            chunks=ChunkSpec(factors=(1,)),
            steps=(Step([0], [1], [0], [1], [True]),),
            owner=np.array([0]), rs_steps=0,
        )
        with pytest.raises(ScheduleError, match="reduce op in an all-gather"):
            verify_schedule(schedule)

    def test_rejects_self_send_and_range_errors(self):
        topo = Topology.flat(2)
        bad_self = Schedule(
            op="all_gather", objective="latency", topology=topo,
            chunks=ChunkSpec(factors=(1,)),
            steps=(Step([0], [0], [0], [1], [False]),),
            owner=np.array([0]), rs_steps=0,
        )
        with pytest.raises(ScheduleError, match="self-send"):
            verify_schedule(bad_self)
        bad_range = Schedule(
            op="all_gather", objective="latency", topology=topo,
            chunks=ChunkSpec(factors=(1,)),
            steps=(Step([0], [1], [0], [2], [False]),),
            owner=np.array([0]), rs_steps=0,
        )
        with pytest.raises(ScheduleError, match="chunk range"):
            verify_schedule(bad_range)


class TestExecutor:
    def _run(self, topo, objective, op, length, seed=0):
        world = topo.world_size
        rng = np.random.default_rng(seed)
        data = rng.integers(-8, 8, size=(world, length)).astype(np.float64)
        buffers = [data[rank].copy() for rank in range(world)]
        transport = Transport(world)
        run_schedule(transport, buffers, synthesize(topo, op, objective))
        assert not transport.pending()
        return data, buffers

    @pytest.mark.parametrize("objective", ["latency", "bandwidth"])
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_all_reduce_matches_ring_library(self, topo, objective):
        data, buffers = self._run(topo, objective, "all_reduce", 37)
        ring_buffers = [row.copy() for row in data]
        ring_all_reduce(Transport(topo.world_size), ring_buffers)
        for got, want in zip(buffers, ring_buffers):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("objective", ["latency", "bandwidth"])
    def test_decoupled_pair_equals_fused(self, objective):
        topo = Topology.from_shape(2, 3)
        world = topo.world_size
        rng = np.random.default_rng(7)
        data = rng.integers(-8, 8, size=(world, 23)).astype(np.float64)
        fused = [data[rank].copy() for rank in range(world)]
        run_schedule(Transport(world), fused,
                     synthesize(topo, "all_reduce", objective))
        pair = [data[rank].copy() for rank in range(world)]
        transport = Transport(world)
        run_schedule(transport, pair, synthesize(topo, "reduce_scatter", objective))
        run_schedule(transport, pair, synthesize(topo, "all_gather", objective))
        for got, want in zip(pair, fused):
            np.testing.assert_array_equal(got, want)

    def test_short_buffer_and_empty(self):
        # Fewer elements than chunks: some chunks are empty slices.
        topo = Topology.flat(8)
        for length in (0, 1, 3):
            data, buffers = self._run(topo, "bandwidth", "all_reduce", length)
            want = data.sum(axis=0)
            for buf in buffers:
                np.testing.assert_array_equal(buf, want)

    def test_world_mismatch_rejected(self):
        schedule = synthesize(Topology.flat(4), "all_reduce", "bandwidth")
        with pytest.raises(ValueError, match="targets 4 ranks"):
            run_schedule(Transport(3), [np.zeros(4)] * 3, schedule)


class TestSynthesisCache:
    def test_schedule_for_caches_by_structure(self):
        clear_schedule_cache()
        first = schedule_for(Topology.from_shape(2, 2), "all_reduce", "latency")
        again = schedule_for(Topology.from_shape(2, 2), "all_reduce", "latency")
        assert first is again
        clear_schedule_cache()
        fresh = schedule_for(Topology.from_shape(2, 2), "all_reduce", "latency")
        assert fresh is not first

    def test_links_do_not_split_the_cache(self):
        clear_schedule_cache()
        cluster = cluster_10gbe(nodes=2, gpus_per_node=2)
        via_cluster = schedule_for_cluster(cluster, "all_gather", "bandwidth")
        bare = schedule_for(Topology.from_shape(2, 2), "all_gather", "bandwidth")
        assert via_cluster is bare

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            synthesize(Topology.flat(4), "all_reduce", "optimal")


class TestDeclaredBounds:
    def test_latency_bound_is_logarithmic(self):
        assert declared_step_bound(Topology.flat(8), "all_reduce", "latency") == 6
        # Non-power-of-two pays one fold round per phase.
        assert declared_step_bound(Topology.flat(5), "all_reduce", "latency") == 6
        assert declared_step_bound(
            Topology.from_shape(4, 4), "all_reduce", "latency"
        ) == 8

    def test_bandwidth_bound_is_linear(self):
        assert declared_step_bound(Topology.flat(8), "reduce_scatter", "bandwidth") == 7
        assert declared_step_bound(
            Topology.from_shape(4, 4), "all_reduce", "bandwidth"
        ) == 12

    def test_two_level_latency_beats_flat_rounds(self):
        # 16 nodes x 4 GPUs: flat HD needs log2(64)=6 inter-priced
        # rounds; the two-level composition needs only log2(16)=4 plus
        # 2 cheap intra rounds.
        topo = Topology.from_shape(16, 4)
        two_level = synthesize(topo, "reduce_scatter", "latency")
        assert two_level.meta["structure"] == "two_level"
        assert two_level.num_steps == 6
