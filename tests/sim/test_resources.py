"""Unit tests for FIFO queues and execution streams."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import FifoQueue, Stream
from repro.sim.trace import Tracer


class TestFifoQueue:
    def test_put_then_get(self):
        sim = Simulator()
        queue = FifoQueue(sim)
        queue.put("x")
        evt = queue.get()
        sim.run()
        assert evt.value == "x"

    def test_get_then_put_wakes_waiter(self):
        sim = Simulator()
        queue = FifoQueue(sim)
        evt = queue.get()
        assert not evt.triggered
        queue.put("y")
        sim.run()
        assert evt.value == "y"

    def test_fifo_ordering_of_items(self):
        sim = Simulator()
        queue = FifoQueue(sim)
        for item in (1, 2, 3):
            queue.put(item)
        values = [queue.get(), queue.get(), queue.get()]
        sim.run()
        assert [v.value for v in values] == [1, 2, 3]

    def test_fifo_ordering_of_waiters(self):
        sim = Simulator()
        queue = FifoQueue(sim)
        first, second = queue.get(), queue.get()
        queue.put("a")
        queue.put("b")
        sim.run()
        assert first.value == "a" and second.value == "b"

    def test_len_counts_queued_items(self):
        sim = Simulator()
        queue = FifoQueue(sim)
        assert len(queue) == 0
        queue.put(1)
        queue.put(2)
        assert len(queue) == 2


class TestStream:
    def test_jobs_run_in_submission_order(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        first = stream.submit(2.0, name="first")
        second = stream.submit(1.0, name="second")
        sim.run()
        assert first.start == 0.0 and first.end == 2.0
        assert second.start == 2.0 and second.end == 3.0

    def test_gate_stalls_stream(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        gate = sim.timeout(5.0)
        gated = stream.submit(1.0, name="gated", gate=gate)
        follower = stream.submit(1.0, name="follower")
        sim.run()
        assert gated.start == 5.0
        assert follower.start == 6.0  # FIFO: cannot overtake the stalled job

    def test_pre_triggered_gate_does_not_stall(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        gate = sim.event()
        gate.succeed()
        job = stream.submit(1.0, gate=gate)
        sim.run()
        assert job.start == 0.0

    def test_callable_body_evaluated_at_start(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        stream.submit(3.0)
        timed = stream.submit(lambda: sim.now, name="dynamic")
        sim.run()
        # body callable returned sim.now (=3.0) as the duration
        assert timed.start == 3.0 and timed.end == 6.0

    def test_generator_body_runs_as_subprocess(self):
        sim = Simulator()
        stream = Stream(sim, "s")

        def body():
            yield 1.0
            yield 2.0

        job = stream.submit(body(), name="gen")
        follower = stream.submit(1.0)
        sim.run()
        assert job.end == 3.0
        assert follower.start == 3.0

    def test_barrier_marks_drain_point(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        stream.submit(1.5)
        stream.submit(2.5)
        barrier = stream.barrier()
        sim.run()
        assert barrier.end == 4.0

    def test_wait_event_stalls_until_event(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        evt = sim.timeout(4.0)
        stream.wait_event(evt)
        job = stream.submit(1.0)
        sim.run()
        assert job.start == 4.0

    def test_busy_time_accumulates(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        stream.submit(1.0)
        stream.submit(2.0)
        sim.run()
        assert stream.busy_time == pytest.approx(3.0)
        assert stream.jobs_completed == 2

    def test_spans_recorded_in_tracer(self):
        sim = Simulator()
        tracer = Tracer()
        stream = Stream(sim, "s", tracer=tracer, actor="gpu0")
        stream.submit(1.0, name="work", category="compute")
        sim.run()
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.actor == "gpu0"
        assert (span.start, span.end) == (0.0, 1.0)

    def test_zero_duration_jobs_not_traced(self):
        sim = Simulator()
        tracer = Tracer()
        stream = Stream(sim, "s", tracer=tracer)
        stream.barrier()
        sim.run()
        assert tracer.spans == []

    def test_done_event_carries_job(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        job = stream.submit(1.0)
        collected = []
        job.done.add_callback(lambda e: collected.append(e.value))
        sim.run()
        assert collected == [job]

    def test_two_streams_run_concurrently(self):
        sim = Simulator()
        a = Stream(sim, "a")
        b = Stream(sim, "b")
        job_a = a.submit(2.0)
        job_b = b.submit(2.0)
        sim.run()
        assert job_a.start == 0.0 and job_b.start == 0.0
        assert sim.now == 2.0
