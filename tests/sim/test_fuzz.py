"""Property fuzzing of the simulation kernel with random job DAGs.

Generates random two-stream schedules (random durations, random gate
edges that always point backward, so they are acyclic) and asserts the
execution-order invariants every schedule must satisfy:

- no job starts before its gate triggered;
- each stream executes jobs in submission order;
- jobs on a stream never overlap;
- every job completes (acyclic gates cannot deadlock);
- the makespan is at least the critical-path length of either stream.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import Stream


@st.composite
def random_schedules(draw):
    """A list of job specs: (stream id, duration, gate target or None).

    Gate targets only reference *earlier* jobs, guaranteeing acyclicity.
    """
    count = draw(st.integers(1, 25))
    jobs = []
    for index in range(count):
        stream_id = draw(st.integers(0, 1))
        duration = draw(
            st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False)
        )
        gate_target = None
        if index > 0 and draw(st.booleans()):
            gate_target = draw(st.integers(0, index - 1))
        jobs.append((stream_id, duration, gate_target))
    return jobs


class TestScheduleFuzz:
    @settings(deadline=None, max_examples=60)
    @given(spec=random_schedules())
    def test_execution_invariants(self, spec):
        sim = Simulator()
        streams = [Stream(sim, "s0"), Stream(sim, "s1")]
        jobs = []
        for index, (stream_id, duration, gate_target) in enumerate(spec):
            gate = jobs[gate_target].done if gate_target is not None else None
            jobs.append(
                streams[stream_id].submit(
                    duration, name=f"job{index}", gate=gate
                )
            )
        sim.run()

        # Everything completed (acyclic gates cannot deadlock).
        for stream in streams:
            assert stream.outstanding == 0
        for job in jobs:
            assert job.start is not None and job.end is not None
            assert job.end >= job.start

        # Gates respected.
        for index, (_, _, gate_target) in enumerate(spec):
            if gate_target is not None:
                assert jobs[index].start >= jobs[gate_target].end - 1e-12

        # Per-stream FIFO without overlap.
        for stream_id in (0, 1):
            stream_jobs = [
                job for job, (sid, _, _) in zip(jobs, spec) if sid == stream_id
            ]
            for earlier, later in zip(stream_jobs, stream_jobs[1:]):
                assert later.start >= earlier.end - 1e-12

        # Makespan lower bound: each stream's total work.
        for stream_id in (0, 1):
            total = sum(
                duration for sid, duration, _ in spec if sid == stream_id
            )
            assert sim.now >= total - 1e-9

    @settings(deadline=None, max_examples=30)
    @given(spec=random_schedules())
    def test_determinism(self, spec):
        def run():
            sim = Simulator()
            streams = [Stream(sim, "s0"), Stream(sim, "s1")]
            jobs = []
            for index, (stream_id, duration, gate_target) in enumerate(spec):
                gate = jobs[gate_target].done if gate_target is not None else None
                jobs.append(streams[stream_id].submit(duration, gate=gate))
            sim.run()
            return [(job.start, job.end) for job in jobs]

        assert run() == run()
