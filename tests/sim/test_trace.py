"""Unit tests for tracing and interval arithmetic."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import (
    Tracer,
    actor_sort_index,
    merge_intervals,
    subtract_intervals,
    total_length,
)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_merge(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merge(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 2)]) == [(0, 2), (5, 6)]

    def test_empty_intervals_dropped(self):
        assert merge_intervals([(1, 1), (2, 1)]) == []

    def test_nested_intervals(self):
        assert merge_intervals([(0, 10), (2, 3), (4, 5)]) == [(0, 10)]


class TestSubtractIntervals:
    def test_no_holes(self):
        assert subtract_intervals([(0, 5)], []) == [(0, 5)]

    def test_hole_in_middle(self):
        assert subtract_intervals([(0, 5)], [(2, 3)]) == [(0, 2), (3, 5)]

    def test_hole_covers_all(self):
        assert subtract_intervals([(1, 2)], [(0, 5)]) == []

    def test_hole_at_edges(self):
        assert subtract_intervals([(0, 10)], [(0, 2), (8, 10)]) == [(2, 8)]

    def test_multiple_bases(self):
        result = subtract_intervals([(0, 2), (4, 6)], [(1, 5)])
        assert result == [(0, 1), (5, 6)]

    def test_hole_before_base_ignored(self):
        assert subtract_intervals([(5, 6)], [(0, 1)]) == [(5, 6)]

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda ab: (min(ab), max(ab))
            ),
            max_size=8,
        ),
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda ab: (min(ab), max(ab))
            ),
            max_size=8,
        ),
    )
    def test_length_identity(self, base, holes):
        """|base \\ holes| + |base ∩ holes| == |base| (up to float eps)."""
        remaining = total_length(subtract_intervals(base, holes))
        # intersection = base minus (base minus holes)
        removed = total_length(base) - remaining
        assert 0 <= removed <= total_length(holes) + 1e-9
        assert remaining <= total_length(base) + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0, 50)).map(
                lambda ab: (min(ab), max(ab))
            ),
            max_size=6,
        )
    )
    def test_subtract_self_is_empty(self, intervals):
        assert subtract_intervals(intervals, intervals) == []


class TestTracer:
    def _tracer(self) -> Tracer:
        tracer = Tracer()
        tracer.record("ff.0", "ff", "gpu", 0.0, 1.0)
        tracer.record("bp.0", "bp", "gpu", 1.0, 3.0)
        tracer.record("ar.0", "comm.ar", "net", 2.0, 5.0)
        return tracer

    def test_filter_by_category(self):
        tracer = self._tracer()
        assert [s.name for s in tracer.filter(category="bp")] == ["bp.0"]

    def test_filter_by_actor(self):
        tracer = self._tracer()
        assert len(tracer.filter(actor="gpu")) == 2

    def test_filter_by_prefix(self):
        tracer = self._tracer()
        assert [s.name for s in tracer.filter(name_prefix="ar")] == ["ar.0"]

    def test_category_total(self):
        assert self._tracer().category_total("comm.ar") == pytest.approx(3.0)

    def test_exposed_time_subtracts_compute(self):
        tracer = self._tracer()
        # comm spans 2..5, bp covers 2..3 -> exposed 3..5 = 2.0
        exposed = tracer.exposed_time("comm.ar", hidden_by=("ff", "bp"))
        assert exposed == pytest.approx(2.0)

    def test_exposed_time_fully_hidden(self):
        tracer = Tracer()
        tracer.record("c", "comm.ar", "net", 0.0, 1.0)
        tracer.record("k", "bp", "gpu", 0.0, 2.0)
        assert tracer.exposed_time("comm.ar", hidden_by=("bp",)) == 0.0

    def test_chrome_trace_is_valid_json(self):
        payload = json.loads(self._tracer().to_chrome_trace())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        sorts = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_sort_index"
        ]
        assert len(spans) == 3
        assert len(names) == 2  # one thread-name record per actor
        assert len(sorts) == 2  # plus one sort-index record per actor
        assert {m["args"]["name"] for m in names} == {"gpu", "net"}

    def test_span_duration(self):
        tracer = self._tracer()
        assert tracer.spans[1].duration == pytest.approx(2.0)

    def test_intervals_merged(self):
        tracer = Tracer()
        tracer.record("a", "x", "m", 0.0, 2.0)
        tracer.record("b", "x", "m", 1.0, 3.0)
        assert tracer.intervals(category="x") == [(0.0, 3.0)]


class TestTracerEdgeCases:
    def test_zero_length_span_exports_with_zero_duration(self):
        tracer = Tracer()
        tracer.record("barrier", "sync", "gpu", 1.0, 1.0)
        payload = json.loads(tracer.to_chrome_trace())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["dur"] == 0.0

    def test_zero_length_span_contributes_no_time(self):
        tracer = Tracer()
        tracer.record("barrier", "comm.ar", "net", 1.0, 1.0)
        assert tracer.category_total("comm.ar") == 0.0
        assert tracer.exposed_time("comm.ar", hidden_by=("bp",)) == 0.0

    def test_exactly_touching_spans_do_not_hide_each_other(self):
        tracer = Tracer()
        tracer.record("k", "bp", "gpu", 0.0, 1.0)
        tracer.record("c", "comm.ar", "net", 1.0, 2.0)  # touches bp at t=1
        assert tracer.exposed_time("comm.ar", hidden_by=("bp",)) == pytest.approx(1.0)

    def test_chrome_json_round_trip(self):
        """Parse the export, rebuild a tracer, re-export: identical bytes."""
        tracer = Tracer()
        tracer.record("ff.0", "ff", "gpu.compute", 0.0, 1.5)
        tracer.record("ar.0", "comm.ar", "gpu.comm", 1.0, 2.25)
        text = tracer.to_chrome_trace()
        payload = json.loads(text)
        actors = {
            e["tid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        rebuilt = Tracer()
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            start = event["ts"] / 1e6
            rebuilt.record(
                event["name"], event["cat"], actors[event["tid"]],
                start, start + event["dur"] / 1e6,
            )
        assert rebuilt.to_chrome_trace() == text


class TestCounterTracks:
    def test_bytes_in_flight_and_queue_depth_fold(self):
        tracer = Tracer()
        tracer.record("a", "comm.rs", "net", 0.0, 2.0, metadata={"bytes": 100})
        tracer.record("b", "comm.ag", "net", 1.0, 3.0, metadata={"bytes": 50})
        payload = json.loads(tracer.to_chrome_trace())
        bytes_track = [
            (e["ts"], e["args"]["bytes"])
            for e in payload["traceEvents"]
            if e["ph"] == "C" and e["name"] == "comm.bytes_in_flight"
        ]
        depth_track = [
            (e["ts"], e["args"]["depth"])
            for e in payload["traceEvents"]
            if e["ph"] == "C" and e["name"] == "comm.queue_depth"
        ]
        # Timestamps are microseconds; the overlap 1..2 carries both payloads.
        assert bytes_track == [
            (0.0, 100.0), (1e6, 150.0), (2e6, 50.0), (3e6, 0.0)
        ]
        assert depth_track == [(0.0, 1), (1e6, 2), (2e6, 1), (3e6, 0)]

    def test_non_comm_spans_do_not_create_counters(self):
        tracer = Tracer()
        tracer.record("ff", "ff", "gpu", 0.0, 1.0, metadata={"bytes": 100})
        payload = json.loads(tracer.to_chrome_trace())
        assert not [e for e in payload["traceEvents"] if e["ph"] == "C"]

    def test_explicit_counter_samples_export(self):
        tracer = Tracer()
        tracer.record("ff", "ff", "gpu", 0.0, 1.0)
        tracer.record_counter("queue.pending", 0.5, 3.0)
        payload = json.loads(tracer.to_chrome_trace())
        samples = [
            e for e in payload["traceEvents"]
            if e["ph"] == "C" and e["name"] == "queue.pending"
        ]
        assert samples == [
            {"name": "queue.pending", "ph": "C", "pid": 0,
             "ts": 0.5e6, "args": {"value": 3.0}}
        ]

    def test_counters_can_be_disabled(self):
        tracer = Tracer()
        tracer.record("a", "comm.rs", "net", 0.0, 1.0, metadata={"bytes": 8})
        payload = json.loads(tracer.to_chrome_trace(counters=False))
        assert not [e for e in payload["traceEvents"] if e["ph"] == "C"]


class TestFlowEvents:
    def _gradient_lifecycle(self) -> Tracer:
        tracer = Tracer()
        tracer.record("bp.0.3", "bp", "gpu.compute", 0.0, 1.0,
                      metadata={"flows": ["0.g0"]})
        tracer.record("rs.0.g0", "comm.rs", "gpu.comm", 1.0, 2.0,
                      metadata={"flow": "0.g0"})
        tracer.record("ag.0.g0", "comm.ag", "gpu.comm", 2.0, 3.0,
                      metadata={"flow": "0.g0"})
        tracer.record("ff.1.3", "ff", "gpu.compute", 3.0, 4.0,
                      metadata={"flows": ("0.g0",)})
        return tracer

    def test_chain_phases_and_binding(self):
        payload = json.loads(self._gradient_lifecycle().to_chrome_trace())
        flow = [e for e in payload["traceEvents"] if e.get("cat") == "flow"]
        assert [e["ph"] for e in flow] == ["s", "t", "t", "f"]
        # The arrow leaves the producer at its completion time and lands
        # on each consumer at its start.
        assert [e["ts"] for e in flow] == [1e6, 1e6, 2e6, 3e6]
        assert all(e["name"] == "0.g0" for e in flow)
        assert len({e["id"] for e in flow}) == 1
        assert flow[-1]["bp"] == "e"
        assert all("bp" not in e for e in flow[:-1])

    def test_single_span_flow_emits_nothing(self):
        tracer = Tracer()
        tracer.record("rs", "comm.rs", "net", 0.0, 1.0, metadata={"flow": "x"})
        payload = json.loads(tracer.to_chrome_trace())
        assert not [e for e in payload["traceEvents"] if e.get("cat") == "flow"]

    def test_flows_can_be_disabled(self):
        payload = json.loads(
            self._gradient_lifecycle().to_chrome_trace(flows=False)
        )
        assert not [e for e in payload["traceEvents"] if e.get("cat") == "flow"]

    def test_distinct_flow_ids_get_distinct_numbers(self):
        tracer = Tracer()
        for flow_id in ("0.g0", "0.g1"):
            tracer.record(f"bp.{flow_id}", "bp", "gpu", 0.0, 1.0,
                          metadata={"flow": flow_id})
            tracer.record(f"rs.{flow_id}", "comm.rs", "net", 1.0, 2.0,
                          metadata={"flow": flow_id})
        payload = json.loads(tracer.to_chrome_trace())
        flow = [e for e in payload["traceEvents"] if e.get("cat") == "flow"]
        assert {e["name"] for e in flow} == {"0.g0", "0.g1"}
        assert len({e["id"] for e in flow}) == 2


class TestActorSortIndex:
    def test_numeric_rank_ordering(self):
        actors = ["rank10.compute", "rank2.compute", "rank9.compute"]
        ordered = sorted(actors, key=actor_sort_index)
        assert ordered == ["rank2.compute", "rank9.compute", "rank10.compute"]

    def test_compute_row_sits_above_comm_row(self):
        actors = ["rank0.comm", "rank0.compute", "rank1.compute", "rank1.comm"]
        ordered = sorted(actors, key=actor_sort_index)
        assert ordered == [
            "rank0.compute", "rank0.comm", "rank1.compute", "rank1.comm"
        ]

    def test_unstructured_names_sort_last(self):
        actors = ["zebra", "gpu.compute", "gpu.comm"]
        ordered = sorted(actors, key=actor_sort_index)
        assert ordered == ["gpu.compute", "gpu.comm", "zebra"]

    def test_tids_follow_sort_order_in_export(self):
        tracer = Tracer()
        tracer.record("a", "comm.ar", "rank1.comm", 0.0, 1.0)
        tracer.record("b", "ff", "rank0.compute", 0.0, 1.0)
        tracer.record("c", "comm.ar", "rank0.comm", 0.0, 1.0)
        payload = json.loads(tracer.to_chrome_trace())
        names = {
            e["tid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {
            0: "rank0.compute", 1: "rank0.comm", 2: "rank1.comm"
        }
