"""Unit tests for tracing and interval arithmetic."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import (
    Tracer,
    merge_intervals,
    subtract_intervals,
    total_length,
)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_merge(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merge(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 2)]) == [(0, 2), (5, 6)]

    def test_empty_intervals_dropped(self):
        assert merge_intervals([(1, 1), (2, 1)]) == []

    def test_nested_intervals(self):
        assert merge_intervals([(0, 10), (2, 3), (4, 5)]) == [(0, 10)]


class TestSubtractIntervals:
    def test_no_holes(self):
        assert subtract_intervals([(0, 5)], []) == [(0, 5)]

    def test_hole_in_middle(self):
        assert subtract_intervals([(0, 5)], [(2, 3)]) == [(0, 2), (3, 5)]

    def test_hole_covers_all(self):
        assert subtract_intervals([(1, 2)], [(0, 5)]) == []

    def test_hole_at_edges(self):
        assert subtract_intervals([(0, 10)], [(0, 2), (8, 10)]) == [(2, 8)]

    def test_multiple_bases(self):
        result = subtract_intervals([(0, 2), (4, 6)], [(1, 5)])
        assert result == [(0, 1), (5, 6)]

    def test_hole_before_base_ignored(self):
        assert subtract_intervals([(5, 6)], [(0, 1)]) == [(5, 6)]

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda ab: (min(ab), max(ab))
            ),
            max_size=8,
        ),
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda ab: (min(ab), max(ab))
            ),
            max_size=8,
        ),
    )
    def test_length_identity(self, base, holes):
        """|base \\ holes| + |base ∩ holes| == |base| (up to float eps)."""
        remaining = total_length(subtract_intervals(base, holes))
        # intersection = base minus (base minus holes)
        removed = total_length(base) - remaining
        assert 0 <= removed <= total_length(holes) + 1e-9
        assert remaining <= total_length(base) + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0, 50)).map(
                lambda ab: (min(ab), max(ab))
            ),
            max_size=6,
        )
    )
    def test_subtract_self_is_empty(self, intervals):
        assert subtract_intervals(intervals, intervals) == []


class TestTracer:
    def _tracer(self) -> Tracer:
        tracer = Tracer()
        tracer.record("ff.0", "ff", "gpu", 0.0, 1.0)
        tracer.record("bp.0", "bp", "gpu", 1.0, 3.0)
        tracer.record("ar.0", "comm.ar", "net", 2.0, 5.0)
        return tracer

    def test_filter_by_category(self):
        tracer = self._tracer()
        assert [s.name for s in tracer.filter(category="bp")] == ["bp.0"]

    def test_filter_by_actor(self):
        tracer = self._tracer()
        assert len(tracer.filter(actor="gpu")) == 2

    def test_filter_by_prefix(self):
        tracer = self._tracer()
        assert [s.name for s in tracer.filter(name_prefix="ar")] == ["ar.0"]

    def test_category_total(self):
        assert self._tracer().category_total("comm.ar") == pytest.approx(3.0)

    def test_exposed_time_subtracts_compute(self):
        tracer = self._tracer()
        # comm spans 2..5, bp covers 2..3 -> exposed 3..5 = 2.0
        exposed = tracer.exposed_time("comm.ar", hidden_by=("ff", "bp"))
        assert exposed == pytest.approx(2.0)

    def test_exposed_time_fully_hidden(self):
        tracer = Tracer()
        tracer.record("c", "comm.ar", "net", 0.0, 1.0)
        tracer.record("k", "bp", "gpu", 0.0, 2.0)
        assert tracer.exposed_time("comm.ar", hidden_by=("bp",)) == 0.0

    def test_chrome_trace_is_valid_json(self):
        payload = json.loads(self._tracer().to_chrome_trace())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == 3
        assert len(metas) == 2  # one thread-name record per actor
        assert {m["args"]["name"] for m in metas} == {"gpu", "net"}

    def test_span_duration(self):
        tracer = self._tracer()
        assert tracer.spans[1].duration == pytest.approx(2.0)

    def test_intervals_merged(self):
        tracer = Tracer()
        tracer.record("a", "x", "m", 0.0, 2.0)
        tracer.record("b", "x", "m", 1.0, 3.0)
        assert tracer.intervals(category="x") == [(0.0, 3.0)]
