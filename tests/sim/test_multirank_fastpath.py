"""Rank-axis replay tests: unit coverage plus the differential suite.

The contract mirrors ``tests/sim/test_fastpath.py`` one axis up: for
every supported policy, scale pattern, and fault plan, the multi-rank
fast path must reproduce the per-rank event kernel's timeline — not
merely within tolerance but *bit-for-bit* (byte-identical exported
traces), because the replay performs the same float operations in the
same order.  Enabling it can never change a scientific result.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, LinkFault, StragglerFault
from repro.network.presets import cluster_10gbe
from repro.schedulers.multirank import POLICIES, simulate_heterogeneous
from repro.sim.fastpath import FastPathUnsupported
from repro.sim.multirank_fastpath import MultiRankTimeline
from repro.telemetry.registry import (
    MetricsRegistry,
    reset_default_registry,
    set_default_registry,
)
from tests.conftest import build_tiny_model

CLUSTER = cluster_10gbe(nodes=2, gpus_per_node=2)  # 4 ranks, fast tests

SCALE_PATTERNS = {
    "uniform": [1.0] * 4,
    "ramp": [1.0, 1.1, 1.2, 1.3],
    "straggler": [1.0, 1.0, 1.0, 1.6],
}

FAULTY = FaultPlan(
    stragglers=(StragglerFault(0.0, 0.5, compute_factor=1.5),),
    link_faults=(LinkFault(0.1, 0.6, alpha_factor=2.0, beta_factor=3.0,
                           link="both"),),
)


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_model()


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    set_default_registry(fresh)
    yield fresh
    reset_default_registry()


# -- MultiRankTimeline unit tests ----------------------------------------------


class TestMultiRankTimeline:
    def test_empty_replay(self):
        timeline = MultiRankTimeline(world=3)
        timeline.stream("compute")
        assert timeline.replay() == 0.0

    def test_per_rank_slots_are_sequential_per_rank(self):
        timeline = MultiRankTimeline(world=2)
        stream = timeline.stream("compute")
        a = stream.submit(np.array([1.0, 2.0]))
        b = stream.submit(np.array([3.0, 1.0]))
        assert timeline.replay() == 4.0
        assert a.starts.tolist() == [0.0, 0.0]
        assert a.ends.tolist() == [1.0, 2.0]
        assert b.starts.tolist() == [1.0, 2.0]
        assert b.ends.tolist() == [4.0, 3.0]
        assert b.rank_start(1) == 2.0

    def test_collective_rendezvous_at_last_arrival(self):
        timeline = MultiRankTimeline(world=3)
        stream = timeline.stream("comm")
        stream.submit(np.array([1.0, 4.0, 2.0]))
        coll = stream.submit_collective(0.5)
        timeline.replay()
        # Every rank arrives at its own time; the collective starts at
        # the last arrival and all ranks share one end.
        assert coll.starts.tolist() == [1.0, 4.0, 2.0]
        assert coll.ends.tolist() == [4.5, 4.5, 4.5]

    def test_cross_stream_gate_is_per_rank(self):
        timeline = MultiRankTimeline(world=2)
        compute = timeline.stream("compute")
        comm = timeline.stream("comm")
        a = compute.submit(np.array([2.0, 5.0]))
        b = comm.submit(np.array([1.0, 1.0]), gate=a.done)
        timeline.replay()
        assert b.starts.tolist() == [2.0, 5.0]
        assert b.ends.tolist() == [3.0, 6.0]

    def test_all_of_combines_slot_gates(self):
        timeline = MultiRankTimeline(world=2)
        compute = timeline.stream("compute")
        comm = timeline.stream("comm")
        a = compute.submit(np.array([1.0, 2.0]))
        b = comm.submit(np.array([3.0, 1.0]))
        gate = timeline.sim.all_of([a.done, b.done])
        c = comm.submit(np.array([1.0, 1.0]), gate=gate)
        timeline.replay()
        assert c.starts.tolist() == [3.0, 2.0]

    def test_job_accounting(self):
        timeline = MultiRankTimeline(world=4)
        stream = timeline.stream("compute")
        stream.submit(np.ones(4))
        stream.submit_collective(1.0)
        assert timeline.slots_recorded == 2
        assert timeline.jobs_recorded == 8

    def test_timestamps_none_before_replay(self):
        timeline = MultiRankTimeline(world=2)
        job = timeline.stream("compute").submit(np.ones(2))
        assert job.starts is None and job.ends is None
        with pytest.raises(RuntimeError, match="not been replayed"):
            job.rank_start(0)

    def test_replay_emits_per_rank_spans(self):
        from repro.sim.trace import Tracer

        timeline = MultiRankTimeline(world=2)
        stream = timeline.stream("compute")
        stream.submit(np.array([1.0, 2.0]), name="work")
        tracer = Tracer()
        timeline.replay(tracer)
        assert sorted(span.actor for span in tracer.spans) == [
            "rank0.compute", "rank1.compute",
        ]

    def test_dynamic_features_raise(self):
        timeline = MultiRankTimeline(world=2)
        stream = timeline.stream("compute")
        with pytest.raises(FastPathUnsupported):
            timeline.sim.event()
        with pytest.raises(FastPathUnsupported):
            timeline.sim.timeout(1.0)
        with pytest.raises(FastPathUnsupported):
            timeline.sim.process(iter(()))
        with pytest.raises(FastPathUnsupported):
            timeline.sim.any_of([])
        with pytest.raises(FastPathUnsupported):
            timeline.sim.schedule(1.0, lambda: None)
        with pytest.raises(FastPathUnsupported):
            stream.submit([1.0, 2.0])  # list, not a (world,) vector
        with pytest.raises(FastPathUnsupported):
            stream.submit(np.ones(2), gate=object())
        with pytest.raises(FastPathUnsupported):
            stream.submit_collective(lambda: 1.0)

    def test_validation_errors(self):
        timeline = MultiRankTimeline(world=2)
        stream = timeline.stream("compute")
        with pytest.raises(ValueError, match="expected 2 durations"):
            stream.submit(np.ones(3))
        with pytest.raises(ValueError, match="negative"):
            stream.submit(np.array([1.0, -1.0]))
        with pytest.raises(ValueError, match="negative"):
            stream.submit_collective(-1.0)
        with pytest.raises(ValueError):
            MultiRankTimeline(world=0)

    def test_randomized_against_slot_recurrence(self):
        """Random slot mixes: replay matches a naive per-slot reference."""
        rng = np.random.default_rng(7)
        for _ in range(10):
            world = int(rng.integers(2, 6))
            n_slots = int(rng.integers(1, 60))
            timeline = MultiRankTimeline(world)
            streams = [timeline.stream("s0"), timeline.stream("s1")]
            handles = []
            ref_prev = [np.zeros(world), np.zeros(world)]
            ref = []
            for index in range(n_slots):
                sid = int(rng.integers(0, 2))
                gate_ids = []
                if index and rng.uniform() < 0.4:
                    count = int(rng.integers(1, min(index, 3) + 1))
                    gate_ids = list(rng.choice(index, size=count, replace=False))
                gate = None
                if gate_ids:
                    gate = timeline.sim.all_of(
                        [handles[g].done for g in gate_ids]
                    )
                arrive = ref_prev[sid].copy()
                for gid in gate_ids:
                    arrive = np.maximum(arrive, ref[gid])
                if rng.uniform() < 0.3:
                    duration = float(rng.uniform(0.0, 2.0))
                    handles.append(
                        streams[sid].submit_collective(duration, gate=gate)
                    )
                    ref_ends = np.full(world, arrive.max() + duration)
                else:
                    durations = rng.uniform(0.0, 2.0, size=world)
                    handles.append(streams[sid].submit(durations, gate=gate))
                    ref_ends = arrive + durations
                ref.append(ref_ends)
                ref_prev[sid] = ref_ends
            timeline.replay()
            for handle, expected in zip(handles, ref):
                np.testing.assert_allclose(handle.ends, expected, rtol=1e-12)


# -- differential suite: policies x scale patterns -----------------------------


def _run_both(policy, model, scales, **kwargs):
    kwargs.setdefault("iteration_compute", 0.03)
    fast = simulate_heterogeneous(
        policy, model, CLUSTER, scales, collapse=False, trace=True,
        fastpath=True, **kwargs,
    )
    slow = simulate_heterogeneous(
        policy, model, CLUSTER, scales, collapse=False, trace=True,
        fastpath=False, **kwargs,
    )
    return fast, slow


def _assert_identical(fast, slow):
    assert fast.extras["engine"] == "multirank-fastpath"
    assert slow.extras["engine"] == "multirank-event"
    # Bit-equality, not approx: both engines perform the same float
    # operations in the same order.
    assert fast.iteration_times == slow.iteration_times
    assert fast.iteration_time == slow.iteration_time
    assert fast.tracer.to_chrome_trace() == slow.tracer.to_chrome_trace()


@pytest.mark.parametrize("scales", SCALE_PATTERNS.values(),
                         ids=SCALE_PATTERNS.keys())
@pytest.mark.parametrize("policy", POLICIES)
class TestDifferentialPolicies:
    def test_fused(self, policy, scales, tiny):
        fast, slow = _run_both(policy, tiny, scales)
        _assert_identical(fast, slow)


@pytest.mark.parametrize("policy", ("wfbp", "dear"))
def test_differential_no_fusion(policy, tiny):
    fast, slow = _run_both(
        policy, tiny, SCALE_PATTERNS["ramp"], fusion_buffer_bytes=None
    )
    _assert_identical(fast, slow)


@pytest.mark.parametrize("policy", ("wfbp", "horovod", "dear"))
def test_differential_with_timing_faults(policy, tiny):
    """Faulty runs stay vectorized and still match the event kernel —
    including the fault accounting, which both engines accumulate in
    bit-identical order."""
    fast, slow = _run_both(policy, tiny, SCALE_PATTERNS["ramp"], faults=FAULTY)
    _assert_identical(fast, slow)
    assert fast.extras["timing_faults"] == slow.extras["timing_faults"]
    assert fast.extras["fault_plan"] == FAULTY.label()
    # The faults actually fired (the trace carries instant markers).
    trace = json.loads(fast.tracer.to_chrome_trace())
    assert [e for e in trace["traceEvents"] if e.get("ph") == "i"]


def test_faults_route_through_fastpath_engine(registry, tiny):
    simulate_heterogeneous(
        "dear", tiny, CLUSTER, SCALE_PATTERNS["ramp"], faults=FAULTY,
        iteration_compute=0.03, fastpath=True,
    )
    runs = registry.counter("sim.runs")
    assert runs.value(engine="multirank-fastpath") > 0
    assert runs.value(engine="multirank-event") == 0


# -- engine selection ----------------------------------------------------------


class TestEngineSelection:
    def test_env_kill_switch(self, tiny, monkeypatch, registry):
        monkeypatch.setenv("DEAR_FASTPATH", "0")
        result = simulate_heterogeneous(
            "dear", tiny, CLUSTER, SCALE_PATTERNS["ramp"],
            iteration_compute=0.03, collapse=False,
        )
        assert result.extras["engine"] == "multirank-event"
        monkeypatch.setenv("DEAR_FASTPATH", "1")
        result = simulate_heterogeneous(
            "dear", tiny, CLUSTER, SCALE_PATTERNS["ramp"],
            iteration_compute=0.03, collapse=False,
        )
        assert result.extras["engine"] == "multirank-fastpath"
        runs = registry.counter("sim.runs")
        assert runs.value(engine="multirank-event") > 0
        assert runs.value(engine="multirank-fastpath") > 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_homogeneous_collapses_to_single_rank(self, policy, tiny):
        collapsed = simulate_heterogeneous(
            policy, tiny, CLUSTER, SCALE_PATTERNS["uniform"],
            iteration_compute=0.03,
        )
        assert collapsed.extras["engine"] == "collapsed"
        full = simulate_heterogeneous(
            policy, tiny, CLUSTER, SCALE_PATTERNS["uniform"],
            iteration_compute=0.03, collapse=False,
        )
        assert collapsed.iteration_time == pytest.approx(
            full.iteration_time, rel=1e-9
        )

    def test_faulty_uniform_run_does_not_collapse(self, tiny):
        """Faults are rank-synchronised only on the multi-rank engines."""
        result = simulate_heterogeneous(
            "dear", tiny, CLUSTER, SCALE_PATTERNS["uniform"], faults=FAULTY,
            iteration_compute=0.03,
        )
        assert result.extras["engine"].startswith("multirank-")
