"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


class TestSimulatorBasics:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_empty_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_schedule_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]
        assert sim.now == 2.5

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(2.0, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_simultaneous_callbacks_fire_in_submission_order(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_advances_clock_when_no_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_timeout_event_succeeds_with_value(self):
        sim = Simulator()
        evt = sim.timeout(1.5, value="payload")
        sim.run()
        assert evt.triggered and evt.value == "payload"
        assert evt.trigger_time == 1.5


class TestEvent:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        evt = sim.event()
        evt.succeed(42)
        assert evt.triggered and evt.ok and evt.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        evt = sim.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_callback_after_trigger_still_runs(self):
        sim = Simulator()
        evt = sim.event()
        evt.succeed(7)
        got = []
        evt.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [7]


class TestProcess:
    def test_process_returns_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"
        assert sim.now == 1.0

    def test_yield_event_receives_its_value(self):
        sim = Simulator()
        evt = sim.event()
        sim.schedule(2.0, lambda: evt.succeed("signal"))

        def proc():
            got = yield evt
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == "signal"

    def test_yield_process_waits_for_completion(self):
        sim = Simulator()

        def child():
            yield 3.0
            return 99

        def parent():
            result = yield sim.process(child())
            return result + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 100
        assert sim.now == 3.0

    def test_unobserved_exception_propagates_from_run(self):
        sim = Simulator()

        def bad():
            yield 1.0
            raise ValueError("boom")

        sim.process(bad())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_observed_exception_delivered_to_waiter(self):
        sim = Simulator()

        def bad():
            yield 1.0
            raise ValueError("boom")

        def waiter():
            try:
                yield sim.process(bad())
            except ValueError:
                return "caught"
            return "missed"

        p = sim.process(waiter())
        sim.run()
        assert p.value == "caught"

    def test_yield_unsupported_value_is_error(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_is_error(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        log = []

        def victim():
            try:
                yield 10.0
            except Interrupt as interrupt:
                log.append(interrupt.cause)
            return "survived"

        p = sim.process(victim())

        def attacker():
            yield 1.0
            p.interrupt("stop now")

        sim.process(attacker())
        sim.run()
        assert log == ["stop now"]
        assert p.value == "survived"
        assert p.trigger_time == 1.0  # finished at the interrupt, not at 10

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            yield 0.5

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestCombinators:
    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        first = sim.timeout(2.0, value="a")
        second = sim.timeout(1.0, value="b")
        combined = sim.all_of([first, second])
        sim.run()
        assert combined.value == ["a", "b"]
        assert combined.trigger_time == 2.0

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        combined = sim.all_of([])
        sim.run()
        assert combined.triggered and combined.value == []

    def test_all_of_fails_on_first_failure(self):
        sim = Simulator()
        ok = sim.timeout(1.0)
        bad = sim.event()
        sim.schedule(0.5, lambda: bad.fail(RuntimeError("x")))
        combined = sim.all_of([ok, bad])

        def waiter():
            try:
                yield combined
            except RuntimeError:
                return "failed"

        p = sim.process(waiter())
        sim.run()
        assert p.value == "failed"

    def test_any_of_returns_first(self):
        sim = Simulator()
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        combined = sim.any_of([slow, fast])
        sim.run()
        assert combined.value == (1, "fast")
        assert combined.trigger_time == 1.0

    def test_any_of_requires_events(self):
        with pytest.raises(SimulationError):
            AnyOf(Simulator(), [])

    def test_nested_combinators(self):
        sim = Simulator()
        a = sim.timeout(1.0, value=1)
        b = sim.timeout(2.0, value=2)
        c = sim.timeout(3.0, value=3)
        combined = sim.all_of([sim.any_of([a, b]), c])
        sim.run()
        assert combined.trigger_time == 3.0
        assert combined.value == [(0, 1), 3]


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def worker(tag, delay):
                yield delay
                log.append((sim.now, tag))
                yield delay
                log.append((sim.now, tag))

            for index in range(5):
                sim.process(worker(index, 0.1 * (index + 1)))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
