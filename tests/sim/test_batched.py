"""Differential suite for config-axis batched replay (repro.sim.batched).

The contract is *bit-identity*, not tolerance: stacking N recorded
timelines and replaying them with one set of numpy ops must yield, for
every config, exactly the floats the solo fast-path replay yields —
identical start/end timestamps, final times, and span-for-span traces —
across schedulers, fusion plans, clusters, and timing-fault scenarios.
Anything structurally incompatible must raise :class:`BatchMismatch`
rather than degrade.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, LinkFault, StragglerFault
from repro.network.cost_model import CollectiveTimeModel
from repro.schedulers.base import get_scheduler
from repro.schedulers.multirank import record_heterogeneous_fast
from repro.sim.batched import (
    BatchMismatch,
    fast_signature,
    multirank_signature,
    replay_fast_batch,
    replay_multirank_batch,
)
from repro.sim.trace import Tracer

#: scheduler policy x fusion-plan grid for the differential sweep.
POLICY_GRID = [
    ("wfbp", {}),
    ("ddp", {}),
    ("mg_wfbp", {}),
    ("dear", {"fusion": "none"}),
    ("dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
    ("horovod", {"fusion": "buffer", "buffer_bytes": 12e6}),
]

#: timing-fault scenarios; each reshapes durations without touching
#: the recorded structure, so all three batch together per policy.
FAULT_GRID = [
    None,
    FaultPlan(stragglers=(StragglerFault(0.0, 5.0, compute_factor=1.5),)),
    FaultPlan(link_faults=(LinkFault(0.0, 5.0, beta_factor=3.0),)),
]


def _record(name, timing, cost, faults=None, **options):
    return get_scheduler(name, **options).record_fast(timing, cost, faults=faults)


def _solo_replay(ctx):
    tracer = Tracer()
    final = ctx._timeline.replay(tracer)
    return final, tracer


def _assert_identical(batched_ctx, batched_tracer, solo_ctx):
    solo_final, solo_tracer = _solo_replay(solo_ctx)
    left, right = batched_ctx._timeline, solo_ctx._timeline
    assert left.final_time == solo_final
    assert np.array_equal(left._starts, right._starts)
    assert np.array_equal(left._ends, right._ends)
    assert batched_tracer.spans == solo_tracer.spans


class TestFastBatchDifferential:
    @pytest.mark.parametrize("name,options", POLICY_GRID,
                             ids=[f"{n}-{i}" for i, (n, _) in enumerate(POLICY_GRID)])
    def test_fault_scenarios_batch_bit_identical(
        self, name, options, tiny_timing, ethernet_cost
    ):
        """One policy, three fault scenarios -> one batched replay."""
        batch = [_record(name, tiny_timing, ethernet_cost, faults=f, **options)
                 for f in FAULT_GRID]
        solo = [_record(name, tiny_timing, ethernet_cost, faults=f, **options)
                for f in FAULT_GRID]
        signatures = {fast_signature(ctx._timeline) for ctx in batch}
        assert len(signatures) == 1, "fault plans must not change structure"
        tracers = [Tracer() for _ in batch]
        finals = replay_fast_batch([ctx._timeline for ctx in batch], tracers)
        for ctx, tracer, final, solo_ctx in zip(batch, tracers, finals, solo):
            assert ctx._timeline.final_time == final
            _assert_identical(ctx, tracer, solo_ctx)

    def test_cross_cluster_batch_bit_identical(
        self, tiny_timing, ethernet_cost, infiniband_cluster
    ):
        """Same policy over different fabrics: same structure, very
        different durations — the config axis the runner batches on."""
        ib_cost = CollectiveTimeModel(infiniband_cluster)
        batch = [_record("wfbp", tiny_timing, cost)
                 for cost in (ethernet_cost, ib_cost, ethernet_cost)]
        solo = [_record("wfbp", tiny_timing, cost)
                for cost in (ethernet_cost, ib_cost, ethernet_cost)]
        tracers = [Tracer() for _ in batch]
        replay_fast_batch([ctx._timeline for ctx in batch], tracers)
        for ctx, tracer, solo_ctx in zip(batch, tracers, solo):
            _assert_identical(ctx, tracer, solo_ctx)

    def test_mixed_plain_and_deferred_configs(self, tiny_timing, ethernet_cost):
        """A faulty config (deferred durations) sharing a batch with
        plain ones must not perturb the plain configs' floats."""
        plans = [None, FAULT_GRID[1], None]
        batch = [_record("dear", tiny_timing, ethernet_cost, faults=f,
                         fusion="none") for f in plans]
        solo = [_record("dear", tiny_timing, ethernet_cost, faults=f,
                        fusion="none") for f in plans]
        tracers = [Tracer() for _ in batch]
        replay_fast_batch([ctx._timeline for ctx in batch], tracers)
        for ctx, tracer, solo_ctx in zip(batch, tracers, solo):
            _assert_identical(ctx, tracer, solo_ctx)

    def test_structure_mismatch_raises(self, tiny_timing, ethernet_cost):
        wfbp = _record("wfbp", tiny_timing, ethernet_cost)
        dear = _record("dear", tiny_timing, ethernet_cost, fusion="none")
        with pytest.raises(BatchMismatch):
            replay_fast_batch([wfbp._timeline, dear._timeline])

    def test_empty_and_singleton(self, tiny_timing, ethernet_cost):
        assert replay_fast_batch([]) == []
        batched = _record("wfbp", tiny_timing, ethernet_cost)
        solo = _record("wfbp", tiny_timing, ethernet_cost)
        tracer = Tracer()
        (final,) = replay_fast_batch([batched._timeline], [tracer])
        assert batched._timeline.final_time == final
        _assert_identical(batched, tracer, solo)


class TestMultiRankBatchDifferential:
    def _record(self, tiny_model, cluster, scales, faults=None):
        return record_heterogeneous_fast(
            "wfbp", tiny_model, cluster, scales, faults=faults
        )

    def test_scale_vectors_batch_bit_identical(self, tiny_model, ethernet_cluster):
        world = ethernet_cluster.world_size
        scale_sets = [
            [1.0] * world,
            [1.0] * (world - 1) + [1.4],
            [1.0 + 0.02 * r for r in range(world)],
        ]
        batch = [self._record(tiny_model, ethernet_cluster, s) for s in scale_sets]
        solo = [self._record(tiny_model, ethernet_cluster, s) for s in scale_sets]
        signatures = {multirank_signature(ctx._timeline) for ctx in batch}
        assert len(signatures) == 1
        tracers = [Tracer() for _ in batch]
        finals = replay_multirank_batch([ctx._timeline for ctx in batch], tracers)
        for ctx, tracer, final, solo_ctx in zip(batch, tracers, finals, solo):
            assert ctx._timeline.final_time == final
            _assert_identical(ctx, tracer, solo_ctx)

    def test_faulty_ranks_batch_bit_identical(self, tiny_model, ethernet_cluster):
        world = ethernet_cluster.world_size
        scales = [1.0] * (world - 1) + [1.2]
        batch = [self._record(tiny_model, ethernet_cluster, scales, faults=f)
                 for f in FAULT_GRID]
        solo = [self._record(tiny_model, ethernet_cluster, scales, faults=f)
                for f in FAULT_GRID]
        tracers = [Tracer() for _ in batch]
        replay_multirank_batch([ctx._timeline for ctx in batch], tracers)
        for ctx, tracer, solo_ctx in zip(batch, tracers, solo):
            _assert_identical(ctx, tracer, solo_ctx)

    def test_world_size_mismatch_raises(self, tiny_model):
        from repro.network.presets import cluster_10gbe

        small = cluster_10gbe(nodes=2, gpus_per_node=2)
        large = cluster_10gbe(nodes=4, gpus_per_node=2)
        a = self._record(tiny_model, small, [1.0] * small.world_size)
        b = self._record(tiny_model, large, [1.0] * large.world_size)
        assert multirank_signature(a._timeline) != multirank_signature(b._timeline)
        with pytest.raises(BatchMismatch):
            replay_multirank_batch([a._timeline, b._timeline])

    def test_empty_and_singleton(self, tiny_model, ethernet_cluster):
        assert replay_multirank_batch([]) == []
        scales = [1.0] * ethernet_cluster.world_size
        batched = self._record(tiny_model, ethernet_cluster, scales)
        solo = self._record(tiny_model, ethernet_cluster, scales)
        tracer = Tracer()
        (final,) = replay_multirank_batch([batched._timeline], [tracer])
        assert batched._timeline.final_time == final
        _assert_identical(batched, tracer, solo)
