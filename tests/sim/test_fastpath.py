"""Vectorized-replay tests: unit coverage plus the differential suite.

The differential tests are the contract of this subsystem: for every
static-gate scheduler policy, the fast path must produce *the same
simulated timeline* as the event-driven kernel — identical iteration
times, exposed-communication breakdowns, and span sets — so enabling it
can never change a scientific result, only how fast it is computed.
Tolerances are 1e-9 relative: the two paths sum the same durations in
different associations, which is a ~1e-15 effect.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.schedulers.base import Scheduler, get_scheduler
from repro.sim.engine import Simulator
from repro.sim.fastpath import (
    FastPathUnsupported,
    FastTimeline,
    fast_path_enabled,
)
from repro.sim.resources import Stream
from repro.sim.trace import Tracer

REL = 1e-9

#: Static-gate policies that must take the fast path.
FAST_SCHEDULERS = ("serial", "wfbp", "ddp", "horovod", "mg_wfbp", "dear", "zero")


def _rel_equal(a: float, b: float) -> bool:
    return abs(a - b) <= REL * max(abs(a), abs(b), 1.0)


# -- FastTimeline unit tests ---------------------------------------------------


class TestFastTimeline:
    def test_empty_replay(self):
        timeline = FastTimeline()
        timeline.stream("compute")
        assert timeline.replay() == 0.0

    def test_single_stream_is_sequential(self):
        timeline = FastTimeline()
        stream = timeline.stream("compute")
        jobs = [stream.submit(d) for d in (1.0, 2.0, 3.0)]
        assert timeline.replay() == 6.0
        assert [j.start for j in jobs] == [0.0, 1.0, 3.0]
        assert [j.end for j in jobs] == [1.0, 3.0, 6.0]

    def test_timestamps_none_before_replay(self):
        timeline = FastTimeline()
        job = timeline.stream("compute").submit(1.0)
        assert job.start is None and job.end is None

    def test_cross_stream_gate_stalls(self):
        timeline = FastTimeline()
        compute = timeline.stream("compute")
        comm = timeline.stream("comm")
        a = compute.submit(2.0)
        b = comm.submit(1.0, gate=a.done)
        c = comm.submit(1.0)
        assert timeline.replay() == 4.0
        assert b.start == 2.0 and b.end == 3.0 and c.end == 4.0

    def test_all_of_combines_gates(self):
        timeline = FastTimeline()
        compute = timeline.stream("compute")
        comm = timeline.stream("comm")
        a = compute.submit(1.0)
        b = compute.submit(3.0)
        c = comm.submit(0.5, gate=timeline.sim.all_of([a.done, b.done]))
        timeline.replay()
        assert c.start == 4.0 and c.end == 4.5

    def test_gate_already_passed_is_free(self):
        timeline = FastTimeline()
        compute = timeline.stream("compute")
        comm = timeline.stream("comm")
        a = comm.submit(0.5)
        b = compute.submit(2.0)
        c = compute.submit(1.0, gate=a.done)
        timeline.replay()
        assert c.start == 2.0 and b.end == 2.0

    def test_zero_duration_jobs_and_spans(self):
        timeline = FastTimeline()
        stream = timeline.stream("compute", actor="gpu")
        stream.submit(1.0, name="work")
        stream.barrier()
        tracer = Tracer()
        assert timeline.replay(tracer) == 1.0
        assert [span.name for span in tracer.spans] == ["work"]

    def test_wait_event_matches_stream_semantics(self):
        timeline = FastTimeline()
        compute = timeline.stream("compute")
        comm = timeline.stream("comm")
        a = comm.submit(3.0)
        compute.submit(1.0)
        compute.wait_event(a.done)
        tail = compute.submit(1.0)
        timeline.replay()
        assert tail.start == 3.0

    def test_dynamic_features_raise(self):
        timeline = FastTimeline()
        stream = timeline.stream("compute")
        with pytest.raises(FastPathUnsupported):
            timeline.sim.event()
        with pytest.raises(FastPathUnsupported):
            timeline.sim.timeout(1.0)
        with pytest.raises(FastPathUnsupported):
            timeline.sim.process(iter(()))
        with pytest.raises(FastPathUnsupported):
            timeline.sim.any_of([])
        with pytest.raises(FastPathUnsupported):
            timeline.sim.schedule(1.0, lambda: None)
        with pytest.raises(FastPathUnsupported):
            stream.submit(lambda: 1.0)
        with pytest.raises(FastPathUnsupported):
            stream.submit((d for d in (1.0,)))
        with pytest.raises(FastPathUnsupported):
            stream.submit(1.0, gate=object())

    def test_negative_duration_rejected(self):
        timeline = FastTimeline()
        with pytest.raises(ValueError):
            timeline.stream("compute").submit(-1.0)

    def test_randomized_against_event_kernel(self):
        """Random static schedules: replay == event kernel, span for span."""
        rng = np.random.default_rng(42)
        for _ in range(25):
            n_jobs = int(rng.integers(1, 120))
            durations = rng.uniform(0.0, 2.0, size=n_jobs)
            durations[rng.uniform(size=n_jobs) < 0.2] = 0.0
            stream_ids = rng.integers(0, 2, size=n_jobs)
            gate_sets: list[list[int]] = []
            for index in range(n_jobs):
                if index and rng.uniform() < 0.4:
                    count = int(rng.integers(1, min(index, 4) + 1))
                    gate_sets.append(
                        list(rng.choice(index, size=count, replace=False))
                    )
                else:
                    gate_sets.append([])

            timeline = FastTimeline()
            fast_streams = [timeline.stream("s0"), timeline.stream("s1")]
            fast_jobs = []
            for index in range(n_jobs):
                gate = None
                if gate_sets[index]:
                    gate = timeline.sim.all_of(
                        [fast_jobs[g].done for g in gate_sets[index]]
                    )
                fast_jobs.append(
                    fast_streams[stream_ids[index]].submit(
                        float(durations[index]), name=f"j{index}", gate=gate
                    )
                )
            fast_final = timeline.replay()

            sim = Simulator()
            streams = [Stream(sim, "s0"), Stream(sim, "s1")]
            jobs = []
            for index in range(n_jobs):
                gate = None
                if gate_sets[index]:
                    gate = sim.all_of([jobs[g].done for g in gate_sets[index]])
                jobs.append(
                    streams[stream_ids[index]].submit(
                        float(durations[index]), name=f"j{index}", gate=gate
                    )
                )
            event_final = sim.run()

            assert _rel_equal(fast_final, event_final)
            for fast_job, job in zip(fast_jobs, jobs):
                assert _rel_equal(fast_job.start, job.start)
                assert _rel_equal(fast_job.end, job.end)


class TestFastPathToggle:
    def test_env_values(self, monkeypatch):
        for value, expected in [
            ("1", True), ("on", True), ("", True), ("yes", True),
            ("0", False), ("off", False), ("FALSE", False), ("no", False),
        ]:
            monkeypatch.setenv("DEAR_FASTPATH", value)
            assert fast_path_enabled() is expected
        monkeypatch.delenv("DEAR_FASTPATH")
        assert fast_path_enabled() is True

    def test_bytescheduler_opts_out(self):
        assert get_scheduler("bytescheduler").supports_fast_path is False
        for name in FAST_SCHEDULERS:
            assert get_scheduler(name).supports_fast_path is True

    def test_dynamic_scheduler_falls_back(self, tiny_timing, ethernet_cost):
        """A mislabelled scheduler degrades to the event kernel, not an error."""

        class DynamicScheduler(Scheduler):
            name = "dynamic-test"
            supports_fast_path = True  # wrong on purpose

            def schedule(self, ctx, iterations):
                for iteration in range(iterations):
                    gate = ctx.sim.event()  # unsupported by the recorder
                    gate.succeed()
                    ctx.submit_forward_pass(iteration, first_gate=gate)
                    ctx.submit_backward_pass(iteration)

            def describe_options(self):
                return {}

        result = DynamicScheduler().run(tiny_timing, ethernet_cost)
        assert result.iteration_time > 0


# -- differential suite: schedulers x workloads --------------------------------


def _run_both(scheduler_name, timing, cost, monkeypatch, **options):
    monkeypatch.setenv("DEAR_FASTPATH", "1")
    fast = get_scheduler(scheduler_name, **options).run(timing, cost)
    monkeypatch.setenv("DEAR_FASTPATH", "0")
    slow = get_scheduler(scheduler_name, **options).run(timing, cost)
    return fast, slow


def _assert_equivalent(fast, slow):
    assert _rel_equal(fast.iteration_time, slow.iteration_time)
    for a, b in zip(fast.iteration_times, slow.iteration_times):
        assert _rel_equal(a, b)
    assert _rel_equal(fast.exposed_comm, slow.exposed_comm)
    assert _rel_equal(fast.exposed_rs, slow.exposed_rs)
    assert _rel_equal(fast.exposed_ag, slow.exposed_ag)
    # Same spans, up to ordering (the event kernel emits in completion
    # order, the replay in submission order).
    fast_spans = sorted(
        fast.tracer.spans, key=lambda s: (s.start, s.end, s.actor, s.name)
    )
    slow_spans = sorted(
        slow.tracer.spans, key=lambda s: (s.start, s.end, s.actor, s.name)
    )
    assert len(fast_spans) == len(slow_spans)
    for a, b in zip(fast_spans, slow_spans):
        assert a.name == b.name
        assert a.category == b.category
        assert a.actor == b.actor
        assert _rel_equal(a.start, b.start)
        assert _rel_equal(a.end, b.end)


@pytest.mark.parametrize("scheduler", FAST_SCHEDULERS + ("bytescheduler",))
class TestDifferentialTiny:
    def test_ethernet(self, scheduler, tiny_timing, ethernet_cost, monkeypatch):
        fast, slow = _run_both(scheduler, tiny_timing, ethernet_cost, monkeypatch)
        _assert_equivalent(fast, slow)

    def test_infiniband(self, scheduler, tiny_timing, infiniband_cluster, monkeypatch):
        cost = CollectiveTimeModel(infiniband_cluster)
        fast, slow = _run_both(scheduler, tiny_timing, cost, monkeypatch)
        _assert_equivalent(fast, slow)


@pytest.mark.parametrize("scheduler", FAST_SCHEDULERS)
@pytest.mark.parametrize("model_fixture", ["resnet50", "bert_base"])
def test_differential_zoo_models(
    scheduler, model_fixture, ethernet_cost, monkeypatch, request
):
    model = request.getfixturevalue(model_fixture)
    timing = TimingModel.for_model(model)
    fast, slow = _run_both(scheduler, timing, ethernet_cost, monkeypatch)
    _assert_equivalent(fast, slow)


@pytest.mark.parametrize(
    "options",
    [
        {"fusion": "none"},
        {"fusion": "layers", "layers_per_group": 3},
        {"fusion": "buffer", "buffer_bytes": 5e6},
        {"fusion": "bo", "bo_trials": 5},
    ],
    ids=lambda options: options["fusion"],
)
def test_differential_dear_fusion_plans(
    options, tiny_timing, ethernet_cost, monkeypatch
):
    fast, slow = _run_both("dear", tiny_timing, ethernet_cost, monkeypatch, **options)
    _assert_equivalent(fast, slow)


@pytest.mark.parametrize("scheduler", FAST_SCHEDULERS)
def test_differential_chrome_trace_byte_for_byte(
    scheduler, tiny_timing, ethernet_cost, monkeypatch
):
    """The exported trace files are *identical*, not merely equivalent.

    The replay performs the same float operations in the same order as
    the event kernel (seeded-cumsum left folds for gateless runs, the
    exact scalar recurrence at gates), so its timestamps are
    bit-identical — and the serialised trace must therefore be
    byte-for-byte equal, not just within tolerance.
    """
    fast, slow = _run_both(scheduler, tiny_timing, ethernet_cost, monkeypatch)
    assert fast.tracer.to_chrome_trace() == slow.tracer.to_chrome_trace()
