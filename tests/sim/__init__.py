"""Test package."""
