"""Timing-level fault injection: differential bit-identity, inflation,
fast-path fallback, and trace instants."""

from __future__ import annotations

import json

import pytest

from repro.faults.plan import FaultPlan, LinkFault, StragglerFault
from repro.network.cost_model import CollectiveTimeModel
from repro.schedulers.base import SCHEDULER_NAMES, simulate
from repro.telemetry.registry import (
    MetricsRegistry,
    reset_default_registry,
    set_default_registry,
)

ITERATIONS = 4

#: Whole-run link degradation: everything gets slower.
SLOW_LINK = FaultPlan(
    link_faults=(LinkFault(0.0, 1e9, alpha_factor=3.0, beta_factor=2.0,
                           link="both"),)
)

#: Whole-run compute straggler.
STRAGGLER = FaultPlan(stragglers=(StragglerFault(0.0, 1e9, compute_factor=1.4),))


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    set_default_registry(fresh)
    yield fresh
    reset_default_registry()


class TestEmptyPlanBitIdentity:
    """The acceptance differential: an empty plan IS the healthy run."""

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_iteration_timeline_identical(self, scheduler, tiny_model,
                                          ethernet_cluster):
        healthy = simulate(scheduler, tiny_model, ethernet_cluster,
                           iterations=ITERATIONS)
        empty = simulate(scheduler, tiny_model, ethernet_cluster,
                         iterations=ITERATIONS, faults=FaultPlan())
        assert empty.iteration_times == healthy.iteration_times
        assert empty.iteration_time == healthy.iteration_time
        assert empty.exposed_comm == healthy.exposed_comm
        assert "fault_plan" not in empty.extras

    @pytest.mark.parametrize("scheduler", ("dear", "wfbp", "bytescheduler"))
    def test_chrome_trace_byte_identical(self, scheduler, tiny_model,
                                         ethernet_cluster):
        healthy = simulate(scheduler, tiny_model, ethernet_cluster,
                           iterations=ITERATIONS)
        empty = simulate(scheduler, tiny_model, ethernet_cluster,
                         iterations=ITERATIONS, faults=FaultPlan())
        assert empty.tracer.to_chrome_trace() == healthy.tracer.to_chrome_trace()


class TestTimingInflation:
    def test_link_fault_slows_communication(self, tiny_model, ethernet_cluster):
        healthy = simulate("dear", tiny_model, ethernet_cluster,
                           iterations=ITERATIONS)
        faulty = simulate("dear", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS, faults=SLOW_LINK)
        assert faulty.iteration_time > healthy.iteration_time
        summary = faulty.extras["timing_faults"]
        assert summary["degraded_link_seconds"] > 0.0
        assert summary["straggler_seconds"] == 0.0
        assert summary["events"] > 0
        assert faulty.extras["fault_plan"] == SLOW_LINK.label()

    def test_straggler_slows_compute(self, tiny_model, ethernet_cluster):
        healthy = simulate("wfbp", tiny_model, ethernet_cluster,
                           iterations=ITERATIONS)
        faulty = simulate("wfbp", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS, faults=STRAGGLER)
        assert faulty.iteration_time > healthy.iteration_time
        summary = faulty.extras["timing_faults"]
        assert summary["straggler_seconds"] > 0.0
        assert summary["degraded_link_seconds"] == 0.0

    def test_windowed_fault_only_touches_the_window(self, tiny_model,
                                                    ethernet_cluster):
        healthy = simulate("dear", tiny_model, ethernet_cluster,
                           iterations=ITERATIONS)
        # Window ends before the simulation starts doing anything close
        # to its end: later iterations must be unperturbed.
        window = FaultPlan(
            link_faults=(LinkFault(0.0, healthy.iteration_times[0] * 0.5,
                                   alpha_factor=4.0, beta_factor=4.0,
                                   link="both"),)
        )
        faulty = simulate("dear", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS, faults=window)
        assert faulty.iteration_times[0] >= healthy.iteration_times[0]
        assert faulty.iteration_times[-1] == pytest.approx(
            healthy.iteration_times[-1], rel=1e-9
        )

    def test_timing_faults_are_deterministic(self, tiny_model,
                                             ethernet_cluster):
        a = simulate("dear", tiny_model, ethernet_cluster,
                     iterations=ITERATIONS, faults=SLOW_LINK)
        b = simulate("dear", tiny_model, ethernet_cluster,
                     iterations=ITERATIONS, faults=SLOW_LINK)
        assert a.iteration_times == b.iteration_times
        assert a.tracer.to_chrome_trace() == b.tracer.to_chrome_trace()


class TestFastPathEngines:
    def test_faulty_run_stays_on_the_fast_path(self, registry, tiny_model,
                                               ethernet_cluster):
        """Priced placeholders keep faulty runs off the event kernel."""
        simulate("dear", tiny_model, ethernet_cluster, iterations=ITERATIONS,
                 faults=SLOW_LINK, fastpath=True)
        runs = registry.counter("sim.runs")
        assert runs.value(engine="fastpath") > 0
        assert runs.value(engine="event") == 0

    def test_healthy_run_keeps_the_fast_path(self, registry, tiny_model,
                                             ethernet_cluster):
        simulate("dear", tiny_model, ethernet_cluster, iterations=ITERATIONS,
                 fastpath=True)
        runs = registry.counter("sim.runs")
        assert runs.value(engine="fastpath") > 0
        assert runs.value(engine="event") == 0

    @pytest.mark.parametrize("plan", [SLOW_LINK, STRAGGLER],
                             ids=["slow-link", "straggler"])
    def test_faulty_fastpath_matches_event_kernel(self, plan, tiny_model,
                                                  ethernet_cluster):
        fast = simulate("dear", tiny_model, ethernet_cluster,
                        iterations=ITERATIONS, faults=plan, fastpath=True)
        event_only = simulate("dear", tiny_model, ethernet_cluster,
                              iterations=ITERATIONS, faults=plan,
                              fastpath=False)
        assert fast.iteration_times == event_only.iteration_times
        assert fast.extras["timing_faults"] == event_only.extras["timing_faults"]
        assert fast.tracer.to_chrome_trace() == event_only.tracer.to_chrome_trace()


class TestTraceInstants:
    def test_faulty_trace_carries_instant_events(self, tiny_model,
                                                 ethernet_cluster):
        result = simulate("dear", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS, faults=SLOW_LINK)
        trace = json.loads(result.tracer.to_chrome_trace())
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert instants
        assert {e["name"] for e in instants} == {"fault.degraded_link"}
        for event in instants:
            assert event["s"] == "g"
            assert event["cat"] == "fault"
            assert "factors" in event["args"]

    def test_healthy_trace_has_no_instants(self, tiny_model,
                                           ethernet_cluster):
        result = simulate("dear", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS)
        trace = json.loads(result.tracer.to_chrome_trace())
        assert not [e for e in trace["traceEvents"] if e.get("ph") == "i"]


class TestDegradedCluster:
    def test_healthy_factors_return_self(self, ethernet_cluster):
        assert ethernet_cluster.degraded() is ethernet_cluster
        assert ethernet_cluster.degraded(1.0, 1.0, 1.0, 1.0) is ethernet_cluster

    def test_factors_scale_alpha_and_beta(self, ethernet_cluster):
        degraded = ethernet_cluster.degraded(
            inter_alpha=2.0, inter_beta=4.0, intra_alpha=3.0, intra_beta=5.0
        )
        assert degraded.inter_link.latency == \
            pytest.approx(2.0 * ethernet_cluster.inter_link.latency)
        # A beta cost factor of k divides bandwidth by k.
        assert degraded.inter_link.bandwidth == \
            pytest.approx(ethernet_cluster.inter_link.bandwidth / 4.0)
        assert degraded.intra_link.latency == \
            pytest.approx(3.0 * ethernet_cluster.intra_link.latency)
        assert degraded.intra_link.bandwidth == \
            pytest.approx(ethernet_cluster.intra_link.bandwidth / 5.0)
        assert "[degraded]" in degraded.name

    def test_degraded_cost_model_prices_higher(self, ethernet_cluster):
        healthy = CollectiveTimeModel(ethernet_cluster, algorithm="ring")
        degraded = CollectiveTimeModel(
            ethernet_cluster.degraded(2.0, 2.0, 2.0, 2.0), algorithm="ring"
        )
        nbytes = 25e6
        assert degraded.all_reduce(nbytes) > healthy.all_reduce(nbytes)
        assert degraded.reduce_scatter(nbytes) > healthy.reduce_scatter(nbytes)
