"""ResilientCommunicator: exactness under faults, recovery, degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, RankFailure
from repro.faults.resilient import ResilientCommunicator, RetryPolicy
from repro.faults.transport import TransportTimeout, UnrecoverableFault
from repro.telemetry.registry import (
    MetricsRegistry,
    reset_default_registry,
    set_default_registry,
)

WORLD = 8
N = 256

#: A plan noisy enough to force several retries on an 8-rank collective.
STORM = FaultPlan(seed=3, drop_prob=0.05, dup_prob=0.05, delay_prob=0.05,
                  fault_budget=40)


def _buffers(seed: int = 0, world: int = WORLD) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.uniform(-1.0, 1.0, N) for _ in range(world)]


def _assert_value_exact(actual, expected):
    """The collective's reduction order differs from np.sum's, so allow
    only last-ulp accumulation noise (the bound the chaos gate uses)."""
    np.testing.assert_allclose(actual, expected, rtol=0, atol=1e-12)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    set_default_registry(fresh)
    yield fresh
    reset_default_registry()


class TestMessageFaultExactness:
    @pytest.mark.parametrize(
        "algorithm,gpus_per_node",
        [("ring", None), ("halving_doubling", None), ("tree", None),
         ("hierarchical", 2)],
    )
    def test_rs_ag_matches_numpy_sum(self, algorithm, gpus_per_node):
        buffers = _buffers()
        expected = np.sum(buffers, axis=0)
        comm = ResilientCommunicator(WORLD, STORM, algorithm=algorithm,
                                     gpus_per_node=gpus_per_node)
        comm.rs_ag(buffers)
        for buf in buffers:
            _assert_value_exact(buf, expected)
        assert comm.survivors == list(range(WORLD))

    def test_all_reduce_with_average(self):
        buffers = _buffers(seed=1)
        expected = np.sum(buffers, axis=0) / WORLD
        comm = ResilientCommunicator(WORLD, STORM)
        comm.all_reduce(buffers, average=True)
        for buf in buffers:
            _assert_value_exact(buf, expected)

    def test_faults_actually_fired(self):
        comm = ResilientCommunicator(WORLD, STORM)
        comm.rs_ag(_buffers())
        summary = comm.fault_summary()
        assert summary["retries"] > 0
        assert summary["timeouts"] > 0
        assert summary["backoff_seconds"] > 0.0
        assert summary["faults_remaining"] < STORM.fault_budget


class TestDeterminism:
    def _run(self) -> tuple[list[np.ndarray], dict]:
        buffers = _buffers(seed=2)
        comm = ResilientCommunicator(WORLD, STORM)
        comm.rs_ag(buffers)
        return buffers, comm.fault_summary()

    def test_identical_runs_bitwise(self):
        buffers_a, summary_a = self._run()
        buffers_b, summary_b = self._run()
        # Retry counts, the jittered backoff total, everything: one
        # seed, one behaviour.
        assert summary_a == summary_b
        for a, b in zip(buffers_a, buffers_b):
            np.testing.assert_array_equal(a, b)


class TestRankDeath:
    def test_death_with_fallback_to_ring(self):
        plan = FaultPlan(seed=0, rank_failures=(RankFailure(3),))
        buffers = _buffers(seed=3)
        comm = ResilientCommunicator(WORLD, plan, algorithm="halving_doubling")
        comm.all_reduce(buffers)
        survivors = [r for r in range(WORLD) if r != 3]
        assert comm.survivors == survivors
        # 7 ranks is not a power of two: the ladder degrades to ring.
        assert comm.algorithm == "ring"
        assert comm.requested_algorithm == "halving_doubling"
        assert comm.rebuilds == 1
        assert any("fell back to ring" in msg for _, msg in comm.degradations)
        initial = _buffers(seed=3)
        expected = np.sum([initial[r] for r in survivors], axis=0)
        for rank in survivors:
            _assert_value_exact(buffers[rank], expected)
        # The dead rank's buffer is untouched.
        np.testing.assert_array_equal(buffers[3], initial[3])

    def test_mid_run_death_rebuilds(self):
        plan = FaultPlan(seed=0,
                         rank_failures=(RankFailure(2, after_collectives=1),))
        buffers = _buffers(seed=4)
        full_sum = np.sum(buffers, axis=0)
        comm = ResilientCommunicator(WORLD, plan)
        comm.all_reduce(buffers)   # epoch 0: everyone participates
        assert comm.survivors == list(range(WORLD))
        comm.rs_ag(buffers)        # epoch 1: rank 2 dies mid-collective
        survivors = [r for r in range(WORLD) if r != 2]
        assert comm.survivors == survivors
        assert comm.rebuilds == 1
        # After the warmup every buffer held the full sum; the rs_ag
        # then re-reduces that over the 7 survivors.
        for rank in survivors:
            _assert_value_exact(buffers[rank], 7 * full_sum)

    def test_standalone_all_gather_cannot_recover_death(self):
        plan = FaultPlan(seed=0, rank_failures=(RankFailure(1),))
        comm = ResilientCommunicator(WORLD, plan)
        with pytest.raises(UnrecoverableFault, match="all-gather"):
            comm.all_gather(_buffers())

    def test_all_ranks_dead_is_unrecoverable(self):
        plan = FaultPlan(
            rank_failures=tuple(RankFailure(r) for r in range(2))
        )
        comm = ResilientCommunicator(2, plan)
        with pytest.raises(UnrecoverableFault, match="every rank died"):
            comm.all_reduce(_buffers(world=2))

    def test_average_divides_by_survivor_count(self):
        plan = FaultPlan(seed=0, rank_failures=(RankFailure(0),))
        buffers = _buffers(seed=5)
        survivors = list(range(1, WORLD))
        expected = np.sum([buffers[r] for r in survivors], axis=0) / len(survivors)
        comm = ResilientCommunicator(WORLD, plan)
        comm.all_reduce(buffers, average=True)
        for rank in survivors:
            _assert_value_exact(buffers[rank], expected)


class TestRetryBounds:
    def test_unexplained_failures_hit_the_policy_ceiling(self):
        # A transport that times out without consuming any fault budget
        # is the pathological case the retry ceiling exists for.
        policy = RetryPolicy(max_retries=3)
        comm = ResilientCommunicator(4, FaultPlan(seed=0), policy=policy)

        def always_timeout(src, dst):
            raise TransportTimeout("wedged")

        comm.transport.recv = always_timeout
        with pytest.raises(UnrecoverableFault, match="no fault budget"):
            comm.all_reduce(_buffers(world=4))
        # The ceiling check fires before the final attempt is counted.
        assert comm.retries == policy.max_retries

    def test_budget_explained_failures_retry_freely(self):
        # More injected faults than max_retries, but each failed attempt
        # burns budget, so the run still completes.
        plan = FaultPlan(seed=3, drop_prob=0.05, dup_prob=0.05,
                         delay_prob=0.05, fault_budget=40)
        policy = RetryPolicy(max_retries=2)
        buffers = _buffers()
        expected = np.sum(buffers, axis=0)
        comm = ResilientCommunicator(WORLD, plan, policy=policy)
        comm.rs_ag(buffers)
        assert comm.retries > policy.max_retries
        for buf in buffers:
            _assert_value_exact(buf, expected)


class TestRetryPolicy:
    def test_backoff_growth_and_cap(self):
        policy = RetryPolicy(max_retries=8, base_delay=0.01, multiplier=2.0,
                             max_delay=0.05, jitter=0.0)
        delays = [policy.delay(i) for i in range(6)]
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert all(d == 0.05 for d in delays[3:])

    def test_jitter_is_deterministic_under_a_seed(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.delay(i, np.random.default_rng(7)) for i in range(4)]
        b = [policy.delay(i, np.random.default_rng(7)) for i in range(4)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestConstruction:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            ResilientCommunicator(4, FaultPlan(), algorithm="nccl")

    def test_hierarchical_needs_gpus_per_node(self):
        with pytest.raises(ValueError, match="gpus_per_node"):
            ResilientCommunicator(4, FaultPlan(), algorithm="hierarchical")

    def test_failure_outside_world(self):
        plan = FaultPlan(rank_failures=(RankFailure(9),))
        with pytest.raises(ValueError, match="outside"):
            ResilientCommunicator(4, plan)

    def test_buffer_count_checked(self):
        comm = ResilientCommunicator(4, FaultPlan(drop_prob=0.1))
        with pytest.raises(ValueError, match="buffers"):
            comm.all_reduce(_buffers(world=3))


class TestTelemetry:
    def test_recovery_counters_published(self, registry):
        comm = ResilientCommunicator(WORLD, STORM)
        comm.rs_ag(_buffers())
        assert registry.counter("faults.retries").value() == comm.retries
        assert registry.counter("faults.timeouts").value() == comm.timeouts
        assert registry.counter("faults.backoff_seconds").value() == \
            pytest.approx(comm.backoff_seconds)
        injected = registry.counter("faults.injected")
        total_injected = sum(
            injected.value(kind=kind)
            for kind in ("drop", "duplicate", "delay")
        )
        assert total_injected == STORM.fault_budget - \
            comm.transport.faults_remaining

    def test_death_counters_published(self, registry):
        plan = FaultPlan(rank_failures=(RankFailure(0),))
        comm = ResilientCommunicator(4, plan)
        comm.all_reduce(_buffers(world=4))
        assert registry.counter("faults.rebuilds").value() == 1
        assert registry.counter("faults.rank_deaths").value() == 1
