"""FaultPlan: validation, classification, queries, canonical identity."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    FaultPlan,
    LinkFault,
    RankFailure,
    StragglerFault,
    normalize_plan,
)


class TestValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValueError, match="drop_prob"):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError, match="dup_prob"):
            FaultPlan(dup_prob=-0.1)

    def test_probabilities_sum(self):
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(drop_prob=0.5, dup_prob=0.4, delay_prob=0.2)

    def test_negative_budget(self):
        with pytest.raises(ValueError, match="fault_budget"):
            FaultPlan(fault_budget=-1)

    def test_rank_failure_validation(self):
        with pytest.raises(ValueError, match="rank"):
            RankFailure(rank=-1)
        with pytest.raises(ValueError, match="after_collectives"):
            RankFailure(rank=0, after_collectives=-1)

    def test_link_fault_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            LinkFault(1.0, 1.0)
        with pytest.raises(ValueError, match="start"):
            LinkFault(-1.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            LinkFault(0.0, 1.0, alpha_factor=0.0)
        with pytest.raises(ValueError, match="scope"):
            LinkFault(0.0, 1.0, link="wan")

    def test_straggler_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            StragglerFault(2.0, 1.0)
        with pytest.raises(ValueError, match="compute_factor"):
            StragglerFault(0.0, 1.0, compute_factor=-1.0)

    def test_lists_become_tuples(self):
        plan = FaultPlan(rank_failures=[RankFailure(0)])
        assert isinstance(plan.rank_failures, tuple)
        assert hash(plan)  # stays hashable


class TestClassification:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan.has_data_faults
        assert not plan.has_timing_faults

    def test_zero_budget_silences_message_faults(self):
        plan = FaultPlan(drop_prob=0.5, fault_budget=0)
        assert not plan.has_message_faults
        assert plan.is_empty

    def test_data_faults(self):
        assert FaultPlan(drop_prob=0.1).has_data_faults
        assert FaultPlan(rank_failures=(RankFailure(0),)).has_data_faults
        assert not FaultPlan(link_faults=(LinkFault(0, 1),)).has_data_faults

    def test_timing_faults(self):
        assert FaultPlan(link_faults=(LinkFault(0, 1),)).has_timing_faults
        assert FaultPlan(stragglers=(StragglerFault(0, 1),)).has_timing_faults
        assert not FaultPlan(drop_prob=0.1).has_timing_faults


class TestTimingQueries:
    def test_compute_factor_window(self):
        plan = FaultPlan(stragglers=(StragglerFault(1.0, 2.0, compute_factor=3.0),))
        assert plan.compute_factor(0.5) == 1.0
        assert plan.compute_factor(1.0) == 3.0
        assert plan.compute_factor(1.999) == 3.0
        assert plan.compute_factor(2.0) == 1.0  # end-exclusive

    def test_overlapping_stragglers_compose(self):
        plan = FaultPlan(
            stragglers=(
                StragglerFault(0.0, 2.0, compute_factor=2.0),
                StragglerFault(1.0, 3.0, compute_factor=1.5),
            )
        )
        assert plan.compute_factor(1.5) == pytest.approx(3.0)

    def test_link_factors_by_scope(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(0, 10, alpha_factor=2.0, beta_factor=3.0, link="inter"),
                LinkFault(0, 10, alpha_factor=5.0, beta_factor=7.0, link="intra"),
            )
        )
        assert plan.link_factors(5.0) == (2.0, 3.0, 5.0, 7.0)
        assert plan.link_factors(11.0) == (1.0, 1.0, 1.0, 1.0)

    def test_link_scope_both(self):
        plan = FaultPlan(
            link_faults=(LinkFault(0, 1, alpha_factor=2.0, beta_factor=2.0,
                                   link="both"),)
        )
        assert plan.link_factors(0.5) == (2.0, 2.0, 2.0, 2.0)


class TestIdentity:
    def test_payload_round_trip(self):
        plan = FaultPlan(
            seed=7,
            drop_prob=0.1,
            dup_prob=0.05,
            delay_prob=0.02,
            fault_budget=12,
            rank_failures=(RankFailure(2, after_collectives=3),),
            link_faults=(LinkFault(0.5, 1.5, alpha_factor=2.0,
                                   beta_factor=4.0, link="intra"),),
            stragglers=(StragglerFault(1.0, 2.0, compute_factor=1.7),),
        )
        assert FaultPlan.from_payload(plan.canonical_payload()) == plan

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_payload({"seed": 1, "jitterbug": True})

    def test_label_mentions_active_faults(self):
        plan = FaultPlan(seed=3, drop_prob=0.1,
                         rank_failures=(RankFailure(0),))
        label = plan.label()
        assert "seed=3" in label and "drop=0.1" in label and "deaths=1" in label


class TestNormalize:
    def test_none_passthrough(self):
        assert normalize_plan(None) is None

    def test_empty_collapses_to_none(self):
        assert normalize_plan(FaultPlan()) is None
        assert normalize_plan(FaultPlan(drop_prob=0.5, fault_budget=0)) is None

    def test_non_empty_passthrough(self):
        plan = FaultPlan(drop_prob=0.1)
        assert normalize_plan(plan) is plan
