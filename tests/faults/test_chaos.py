"""Chaos properties and the ``dear-repro chaos`` command.

The property sweep is the "never deadlocks, always exact" contract:
every seeded plan must terminate within a wall-clock bound and leave
the surviving ranks holding the numpy-exact reduction.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import run_collective
from repro.faults.chaos_cmd import check_golden
from repro.faults.plan import FaultPlan, RankFailure

#: Generous wall-clock ceiling per seeded collective; a deadlock or an
#: unbounded retry loop would blow far past it.
TIMEOUT_SECONDS = 30.0


class TestChaosProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_storms_terminate_and_stay_exact(self, seed):
        plan = FaultPlan(seed=seed, drop_prob=0.06, dup_prob=0.06,
                         delay_prob=0.06, fault_budget=48)
        rng = np.random.default_rng(seed)
        initial = [rng.uniform(-1.0, 1.0, 512) for _ in range(8)]
        expected = np.sum(initial, axis=0)
        started = time.monotonic()
        result = run_collective("rs_ag", 8, faults=plan, buffers=initial)
        assert time.monotonic() - started < TIMEOUT_SECONDS
        assert result.survivors == list(range(8))
        for rank in result.survivors:
            np.testing.assert_allclose(result.buffers[rank], expected,
                                       rtol=0, atol=1e-12)

    @pytest.mark.parametrize("seed", range(3))
    def test_storm_plus_death_terminates(self, seed):
        plan = FaultPlan(
            seed=seed, drop_prob=0.04, delay_prob=0.04, fault_budget=32,
            rank_failures=(RankFailure(rank=seed % 8),),
        )
        started = time.monotonic()
        result = run_collective("all_reduce", 8, faults=plan, seed=seed)
        assert time.monotonic() - started < TIMEOUT_SECONDS
        assert len(result.survivors) == 7
        assert result.fault_summary["rebuilds"] >= 1

    def test_same_seed_same_report(self):
        plan = FaultPlan(seed=11, drop_prob=0.05, dup_prob=0.05,
                         fault_budget=32)
        a = run_collective("rs_ag", 8, faults=plan, seed=11)
        b = run_collective("rs_ag", 8, faults=plan, seed=11)
        assert a.fault_summary == b.fault_summary
        assert a.wire_bytes == b.wire_bytes
        for x, y in zip(a.buffers, b.buffers):
            np.testing.assert_array_equal(x, y)


class TestCheckGolden:
    REPORT = {
        "seed": 0,
        "timing": {"dear": {"healthy": {"iteration_time": 0.25}}},
        "data": [{"name": "storm", "ok": True, "retries": 17}],
    }

    def test_identical_reports_pass(self):
        assert check_golden(self.REPORT, json.loads(json.dumps(self.REPORT))) == []

    def test_float_drift_detected(self):
        golden = json.loads(json.dumps(self.REPORT))
        golden["timing"]["dear"]["healthy"]["iteration_time"] = 0.26
        drift = check_golden(self.REPORT, golden)
        assert drift and "iteration_time" in drift[0]

    def test_tiny_float_noise_tolerated(self):
        golden = json.loads(json.dumps(self.REPORT))
        golden["timing"]["dear"]["healthy"]["iteration_time"] *= 1 + 1e-12
        assert check_golden(self.REPORT, golden) == []

    def test_integer_and_bool_exact(self):
        golden = json.loads(json.dumps(self.REPORT))
        golden["data"][0]["retries"] = 18
        assert check_golden(self.REPORT, golden)
        golden = json.loads(json.dumps(self.REPORT))
        golden["data"][0]["ok"] = False
        assert check_golden(self.REPORT, golden)

    def test_missing_and_extra_keys_detected(self):
        golden = json.loads(json.dumps(self.REPORT))
        del golden["data"][0]["retries"]
        assert any("not in golden" in line
                   for line in check_golden(self.REPORT, golden))
        golden = json.loads(json.dumps(self.REPORT))
        golden["data"][0]["rebuilds"] = 0
        assert any("missing from current" in line
                   for line in check_golden(self.REPORT, golden))

    def test_list_length_mismatch(self):
        golden = json.loads(json.dumps(self.REPORT))
        golden["data"].append({"name": "extra"})
        assert any("length" in line
                   for line in check_golden(self.REPORT, golden))


class TestChaosCommand:
    @pytest.fixture(scope="class")
    def quick_report(self, tmp_path_factory):
        """One quick sweep, shared by the class (simulations are cached)."""
        from repro.faults.chaos_cmd import chaos_main

        path = tmp_path_factory.mktemp("chaos") / "report.json"
        code = chaos_main(["--quick", "--seed", "0", "--json", str(path)])
        assert code == 0
        return json.loads(path.read_text())

    def test_report_structure(self, quick_report):
        assert quick_report["quick"] is True
        assert set(quick_report["timing"]) == {"wfbp", "dear"}
        for rows in quick_report["timing"].values():
            assert set(rows) == {"healthy", "slow_link", "flaky_window",
                                 "straggler"}
            assert rows["slow_link"]["slowdown"] > 1.0
            assert rows["flaky_window"]["slowdown"] > 1.0
        names = [row["name"] for row in quick_report["data"]]
        assert names == ["message_storm", "dead_rank_fallback"]
        assert all(row["ok"] for row in quick_report["data"])

    def test_degradation_reported(self, quick_report):
        fallback = quick_report["data"][1]
        assert fallback["requested_algorithm"] == "halving_doubling"
        assert fallback["algorithm"] == "ring"
        assert len(fallback["survivors"]) == 7
        assert fallback["rebuilds"] == 1

    def test_matches_committed_golden(self, quick_report):
        """The in-tree golden is what CI gates on; catch drift locally."""
        from pathlib import Path

        golden_path = Path(__file__).resolve().parents[2] / "benchmarks" / \
            "chaos_golden.json"
        golden = json.loads(golden_path.read_text())
        assert check_golden(quick_report, golden) == []

    def test_cli_dispatch_and_golden_exit_codes(self, quick_report, tmp_path):
        from repro.cli import main

        golden = tmp_path / "golden.json"
        golden.write_text(json.dumps(quick_report))
        assert main(["chaos", "--quick", "--check-golden", str(golden)]) == 0
        drifted = json.loads(json.dumps(quick_report))
        drifted["data"][0]["retries"] += 1
        golden.write_text(json.dumps(drifted))
        assert main(["chaos", "--quick", "--check-golden", str(golden)]) == 3
