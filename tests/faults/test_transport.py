"""FaultyTransport: injected drop/dup/delay/death semantics and budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, RankFailure
from repro.faults.transport import (
    FaultyTransport,
    RankDeadError,
    TransportTimeout,
)


def _payload(value: float = 1.0, n: int = 8) -> np.ndarray:
    return np.full(n, value)


class TestDrop:
    def test_dropped_message_times_out(self):
        plan = FaultPlan(seed=0, drop_prob=1.0, fault_budget=1)
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload())
        with pytest.raises(TransportTimeout, match="lost"):
            transport.recv(0, 1)

    def test_budget_exhaustion_restores_clean_delivery(self):
        plan = FaultPlan(seed=0, drop_prob=1.0, fault_budget=1)
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload(1.0))  # dropped: the only budget unit
        assert transport.faults_remaining == 0
        with pytest.raises(TransportTimeout):
            transport.recv(0, 1)
        transport.send(0, 1, _payload(2.0))  # clean from now on
        np.testing.assert_array_equal(transport.recv(0, 1), _payload(2.0))


class TestDuplicate:
    def test_duplicate_is_discarded_transparently(self):
        plan = FaultPlan(seed=0, dup_prob=1.0, fault_budget=1)
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload(3.0))
        np.testing.assert_array_equal(transport.recv(0, 1), _payload(3.0))
        # The duplicate copy still sits in the mailbox; a later recv
        # skips it (sequence dedup) rather than double-counting.
        transport.send(0, 1, _payload(4.0))
        np.testing.assert_array_equal(transport.recv(0, 1), _payload(4.0))

    def test_duplicate_bytes_hit_the_wire_counters(self):
        plan = FaultPlan(seed=0, dup_prob=1.0, fault_budget=1)
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload())
        clean = FaultyTransport(2, FaultPlan())
        clean.send(0, 1, _payload())
        assert transport.stats.bytes == 2 * clean.stats.bytes


class TestDelay:
    def test_delay_times_out_once_then_delivers(self):
        plan = FaultPlan(seed=0, delay_prob=1.0, fault_budget=1)
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload(5.0))
        with pytest.raises(TransportTimeout, match="delayed"):
            transport.recv(0, 1)
        np.testing.assert_array_equal(transport.recv(0, 1), _payload(5.0))


class TestRankDeath:
    def test_dead_from_start(self):
        plan = FaultPlan(rank_failures=(RankFailure(1, after_collectives=0),))
        transport = FaultyTransport(2, plan)
        assert transport.dead == {1}
        transport.send(1, 0, _payload())  # vanishes silently
        assert transport.stats.messages == 0
        with pytest.raises(RankDeadError):
            transport.recv(1, 0)

    def test_recv_from_dead_rank_raises(self):
        plan = FaultPlan(rank_failures=(RankFailure(0),))
        transport = FaultyTransport(2, plan)
        with pytest.raises(RankDeadError) as info:
            transport.recv(0, 1)
        assert info.value.rank == 0

    def test_send_to_dead_rank_is_swallowed(self):
        plan = FaultPlan(rank_failures=(RankFailure(1),))
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload())
        assert transport.stats.messages == 0

    def test_epoch_activation(self):
        plan = FaultPlan(rank_failures=(RankFailure(1, after_collectives=2),))
        transport = FaultyTransport(2, plan)
        assert transport.dead == set()
        assert transport.advance_epoch(1) == set()
        assert transport.advance_epoch(2) == {1}
        # Already-dead ranks are not reported as fresh again.
        assert transport.advance_epoch(3) == set()

    def test_failure_outside_world_rejected(self):
        plan = FaultPlan(rank_failures=(RankFailure(5),))
        with pytest.raises(ValueError, match="outside"):
            FaultyTransport(2, plan)


class TestDrainAndDeterminism:
    def test_drain_discards_everything(self):
        plan = FaultPlan(seed=0, delay_prob=1.0, fault_budget=2)
        transport = FaultyTransport(2, plan)
        transport.send(0, 1, _payload())
        transport.send(0, 1, _payload())
        assert transport.drain() == 2
        transport.send(0, 1, _payload(9.0))
        # Pending delay tokens were cleared with the mailboxes.
        np.testing.assert_array_equal(transport.recv(0, 1), _payload(9.0))

    def _fault_trace(self, generation: int = 0) -> list[str]:
        plan = FaultPlan(seed=42, drop_prob=0.2, dup_prob=0.2,
                         delay_prob=0.2, fault_budget=16)
        transport = FaultyTransport(2, plan, generation=generation)
        outcomes = []
        for i in range(24):
            transport.send(0, 1, _payload(float(i)))
            try:
                transport.recv(0, 1)
                outcomes.append("ok")
            except TransportTimeout:
                outcomes.append("timeout")
                transport.drain()
        return outcomes

    def test_same_seed_same_fault_sequence(self):
        assert self._fault_trace() == self._fault_trace()

    def test_generation_changes_the_stream(self):
        # A rebuilt group must not replay the identical fault sequence.
        assert self._fault_trace(0) != self._fault_trace(1)
