"""Tests for the scheduler interface, registry, and measurement logic."""

import pytest

from repro.schedulers.base import (
    SCHEDULER_NAMES,
    get_scheduler,
    simulate,
    single_gpu_result,
)

class TestRegistry:
    def test_all_names_resolvable(self):
        for name in SCHEDULER_NAMES:
            assert get_scheduler(name).name == name

    def test_dash_normalised(self):
        assert get_scheduler("mg-wfbp").name == "mg_wfbp"

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            get_scheduler("chronos")

    def test_options_forwarded(self):
        scheduler = get_scheduler("dear", fusion="buffer", buffer_bytes=1e6)
        assert scheduler.fusion == "buffer"
        assert scheduler.buffer_bytes == 1e6


class TestMeasurement:
    def test_steady_state_gaps_converge(self, tiny_model, ethernet_cluster):
        result = simulate("wfbp", tiny_model, ethernet_cluster, iterations=6)
        gaps = result.iteration_times
        assert len(gaps) == 5
        # after warm-up, consecutive gaps must agree
        assert gaps[-1] == pytest.approx(gaps[-2], rel=1e-9)

    def test_minimum_iterations_enforced(self, tiny_timing, ethernet_cost):
        with pytest.raises(ValueError):
            get_scheduler("wfbp").run(tiny_timing, ethernet_cost, iterations=2)

    def test_throughput_definitions(self, tiny_model, ethernet_cluster):
        result = simulate("wfbp", tiny_model, ethernet_cluster)
        assert result.throughput == pytest.approx(
            result.world_size * result.batch_size / result.iteration_time
        )
        assert result.per_gpu_throughput == pytest.approx(
            result.batch_size / result.iteration_time
        )

    def test_speedup_over_requires_same_batch(self, tiny_model, ethernet_cluster):
        a = simulate("wfbp", tiny_model, ethernet_cluster)
        b = simulate("dear", tiny_model, ethernet_cluster, fusion="none",
                     batch_size=4)
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_scaling_speedup(self, tiny_model, ethernet_cluster):
        single = single_gpu_result(tiny_model)
        # the tiny model has no calibrated profile; use explicit compute
        assert single.world_size == 1

    def test_result_extras_describe_options(self, tiny_model, ethernet_cluster):
        result = simulate(
            "dear", tiny_model, ethernet_cluster, fusion="buffer", buffer_bytes=2e6
        )
        assert result.extras["fusion"] == "buffer"
        assert result.extras["buffer_bytes"] == 2e6


class TestSingleGpu:
    def test_iteration_is_pure_compute(self, resnet50):
        result = single_gpu_result(resnet50)
        assert result.iteration_time == pytest.approx(result.t_ff + result.t_bp)
        assert result.exposed_comm == 0.0

    def test_batch_size_override(self, resnet50):
        full = single_gpu_result(resnet50)
        half = single_gpu_result(resnet50, batch_size=32)
        assert half.iteration_time < full.iteration_time
