"""Cross-scheduler invariants, property-tested over random models.

These are the correctness arguments of the paper cast as executable
properties: every scheduler's iteration time is bounded below by both
the compute critical path and the communication volume, DeAR's
decoupling never changes the bytes on the wire, and the steady state
is genuinely steady.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.layers import ModelBuilder
from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.schedulers.base import get_scheduler

SCHEDULER_CASES = [
    ("serial", {}),
    ("wfbp", {}),
    ("ddp", {"buffer_bytes": 25e6}),
    ("horovod", {"buffer_bytes": 25e6}),
    ("mg_wfbp", {}),
    ("bytescheduler", {}),
    ("dear", {"fusion": "none"}),
    ("dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
    ("dear", {"fusion": "layers"}),
]


@st.composite
def random_models(draw):
    """Random small layered models (1-12 layers, varied tensor sizes)."""
    num_layers = draw(st.integers(1, 12))
    builder = ModelBuilder("rand", "Rand", 8)
    for index in range(num_layers):
        tensors = draw(st.integers(1, 3))
        sizes = [
            (f"t{t}", draw(st.integers(10, 500_000))) for t in range(tensors)
        ]
        builder.add_layer(
            f"layer{index}", "conv", sizes, flops=draw(st.integers(1, 10)) * 1e6
        )
    return builder.build()


class TestLowerBounds:
    @pytest.mark.parametrize("name,options", SCHEDULER_CASES)
    @settings(deadline=None, max_examples=10)
    @given(model=random_models(), data=st.data())
    def test_compute_and_comm_bounds(self, name, options, model, data):
        timing = TimingModel.for_model(model, iteration_compute=0.02)
        cluster = data.draw(st.sampled_from([cluster_10gbe(), cluster_100gbib()]))
        cost = CollectiveTimeModel(cluster)
        result = get_scheduler(name, **options).run(timing, cost)

        compute_bound = timing.t_ff + timing.t_bp
        volume_bound = cost.reduce_scatter(model.gradient_bytes) + cost.all_gather(
            model.gradient_bytes
        )
        assert result.iteration_time >= compute_bound - 1e-9
        # One fused collective of everything is the comm floor (fewer
        # startups than any partition of it).
        assert result.iteration_time >= volume_bound - 1e-9

    @pytest.mark.parametrize("name,options", SCHEDULER_CASES)
    @settings(deadline=None, max_examples=8)
    @given(model=random_models())
    def test_steady_state_converges(self, name, options, model):
        timing = TimingModel.for_model(model, iteration_compute=0.02)
        cost = CollectiveTimeModel(cluster_10gbe())
        result = get_scheduler(name, **options).run(timing, cost, iterations=6)
        gaps = result.iteration_times
        assert gaps[-1] == pytest.approx(gaps[-2], rel=1e-6)

    @pytest.mark.parametrize("name,options", SCHEDULER_CASES)
    @settings(deadline=None, max_examples=8)
    @given(model=random_models())
    def test_exposed_comm_within_iteration(self, name, options, model):
        timing = TimingModel.for_model(model, iteration_compute=0.02)
        cost = CollectiveTimeModel(cluster_10gbe())
        result = get_scheduler(name, **options).run(timing, cost)
        assert -1e-9 <= result.exposed_comm <= result.iteration_time + 1e-9
        assert result.exposed_rs <= result.exposed_comm + 1e-9
        assert result.exposed_ag <= result.exposed_comm + 1e-9


class TestDeARProperties:
    @settings(deadline=None, max_examples=10)
    @given(model=random_models(), buffer_mb=st.floats(0.1, 100))
    def test_dear_conserves_communication_volume(self, model, buffer_mb):
        """Decoupling + fusion never change total bytes communicated."""
        timing = TimingModel.for_model(model, iteration_compute=0.02)
        cost = CollectiveTimeModel(cluster_10gbe())
        result = get_scheduler(
            "dear", fusion="buffer", buffer_bytes=buffer_mb * 1e6
        ).run(timing, cost, iterations=3)
        spans = [
            s for s in result.tracer.spans
            if s.category in ("comm.rs", "comm.ag") and s.metadata["iteration"] == 1
        ]
        rs_bytes = sum(s.metadata["bytes"] for s in spans if s.category == "comm.rs")
        ag_bytes = sum(s.metadata["bytes"] for s in spans if s.category == "comm.ag")
        assert rs_bytes == model.gradient_bytes
        assert ag_bytes == model.gradient_bytes

    @settings(deadline=None, max_examples=10)
    @given(model=random_models())
    def test_dear_rs_before_ag_within_iteration(self, model):
        """The §III-B sync point: every RS of iteration k ends before
        any AG of iteration k starts."""
        timing = TimingModel.for_model(model, iteration_compute=0.02)
        cost = CollectiveTimeModel(cluster_10gbe())
        result = get_scheduler("dear", fusion="none").run(timing, cost, iterations=3)
        for iteration in range(3):
            rs_ends = [
                s.end for s in result.tracer.filter(category="comm.rs")
                if s.metadata["iteration"] == iteration
            ]
            ag_starts = [
                s.start for s in result.tracer.filter(category="comm.ag")
                if s.metadata["iteration"] == iteration
            ]
            if rs_ends and ag_starts:
                assert max(rs_ends) <= min(ag_starts) + 1e-12

    @settings(deadline=None, max_examples=10)
    @given(model=random_models())
    def test_dear_no_slower_than_wfbp_equal_fusion(self, model):
        """With identical (no) fusion, DeAR's schedule dominates WFBP:
        it has strictly more overlap opportunities."""
        timing = TimingModel.for_model(model, iteration_compute=0.02)
        cost = CollectiveTimeModel(cluster_10gbe())
        wfbp = get_scheduler("wfbp").run(timing, cost)
        dear = get_scheduler("dear", fusion="none").run(timing, cost)
        assert dear.iteration_time <= wfbp.iteration_time + 1e-9


class TestComparativeOrdering:
    def test_network_ordering(self, resnet50):
        """Every scheduler must be at least as fast on IB as on 10GbE."""
        timing = TimingModel.for_model(resnet50)
        eth = CollectiveTimeModel(cluster_10gbe())
        ib = CollectiveTimeModel(cluster_100gbib())
        for name, options in SCHEDULER_CASES:
            slow = get_scheduler(name, **options).run(timing, eth)
            fast = get_scheduler(name, **options).run(timing, ib)
            assert fast.iteration_time <= slow.iteration_time + 1e-9, name

    def test_dear_wins_on_paper_workloads(self, resnet50, bert_base):
        """DeAR (25 MB fusion) beats Horovod/DDP/MG-WFBP on the paper's
        two headline models over 10GbE."""
        eth = CollectiveTimeModel(cluster_10gbe())
        for model in (resnet50, bert_base):
            timing = TimingModel.for_model(model)
            dear = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
                timing, eth
            )
            for rival, options in [
                ("horovod", {"buffer_bytes": 25e6}),
                ("ddp", {"buffer_bytes": 25e6}),
                ("mg_wfbp", {}),
            ]:
                other = get_scheduler(rival, **options).run(timing, eth)
                assert dear.iteration_time <= other.iteration_time + 1e-9, (
                    model.name, rival,
                )
