"""Deadlock detection and stall diagnostics in the scheduler engine."""

import pytest

from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.schedulers.engine import IterationContext
from repro.sim.engine import Simulator
from repro.sim.resources import Stream
from tests.conftest import build_tiny_model


@pytest.fixture()
def ctx(ethernet_cluster):
    timing = TimingModel.for_model(build_tiny_model(), iteration_compute=0.03)
    return IterationContext(timing, CollectiveTimeModel(ethernet_cluster))


class TestQuiescenceCheck:
    def test_clean_schedule_passes(self, ctx):
        ctx.submit_ff_layer(0, 0)
        ctx.submit_collective("all_reduce", 1e6, 0, "g0")
        ctx.run()  # no error

    def test_never_triggered_gate_detected(self, ctx):
        orphan = ctx.sim.event(name="never")
        ctx.submit_ff_layer(0, 0, gate=orphan)
        with pytest.raises(RuntimeError, match="deadlock"):
            ctx.run()

    def test_stalled_job_named_in_report(self, ctx):
        orphan = ctx.sim.event(name="never")
        ctx.submit_collective("all_gather", 1e6, 3, "g7", gate=orphan)
        with pytest.raises(RuntimeError, match="all_gather.3.g7"):
            ctx.run()

    def test_jobs_behind_stall_counted(self, ctx):
        orphan = ctx.sim.event(name="never")
        ctx.submit_ff_layer(0, 0, gate=orphan)
        ctx.submit_ff_layer(0, 1)
        ctx.submit_ff_layer(0, 2)
        with pytest.raises(RuntimeError, match="2 queued behind"):
            ctx.run()

    def test_check_can_be_disabled(self, ctx):
        orphan = ctx.sim.event(name="never")
        ctx.submit_ff_layer(0, 0, gate=orphan)
        ctx.run(check_quiescent=False)  # silently incomplete, by request

    def test_cross_stream_cycle_detected(self, ctx):
        """Compute waits on comm which waits on compute: a real cycle."""
        comm_job = None

        compute_gate = ctx.sim.event(name="compute_gate")
        ff = ctx.submit_ff_layer(0, 0, gate=compute_gate)
        comm_job = ctx.submit_collective(
            "all_reduce", 1e6, 0, "g0", gate=ff.done
        )
        comm_job.done.add_callback(lambda e: compute_gate.succeed())
        with pytest.raises(RuntimeError, match="deadlock"):
            ctx.run()


class TestStallReport:
    def test_quiescent_report(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        stream.submit(1.0)
        sim.run()
        assert "quiescent" in stream.stall_report()

    def test_pending_gate_report(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        stream.submit(1.0, name="blocked", gate=sim.event())
        sim.run()
        report = stream.stall_report()
        assert "blocked" in report
        assert "GATE PENDING" in report

    def test_outstanding_count(self):
        sim = Simulator()
        stream = Stream(sim, "s")
        stream.submit(1.0, gate=sim.event())
        stream.submit(1.0)
        sim.run()
        assert stream.outstanding == 2
