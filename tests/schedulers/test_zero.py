"""Tests for the ZeRO-3 / FSDP scheduler model."""

import pytest

from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.schedulers.base import get_scheduler
from tests.conftest import build_tiny_model


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_model()


@pytest.fixture(scope="module")
def timing(tiny):
    return TimingModel.for_model(tiny, iteration_compute=0.03)


@pytest.fixture(scope="module")
def cost(ethernet_cluster):
    return CollectiveTimeModel(ethernet_cluster)


class TestZeROSchedule:
    def test_runs_to_steady_state(self, timing, cost):
        result = get_scheduler("zero", buffer_bytes=1e6).run(timing, cost)
        gaps = result.iteration_times
        assert gaps[-1] == pytest.approx(gaps[-2], rel=1e-9)

    def test_three_collective_phases_per_group(self, tiny, timing, cost):
        """Per iteration: forward AG + backward AG + gradient RS."""
        result = get_scheduler("zero", buffer_bytes=None).run(timing, cost,
                                                              iterations=3)
        ag = [
            s for s in result.tracer.filter(category="comm.ag")
            if s.metadata["iteration"] == 1
        ]
        rs = [
            s for s in result.tracer.filter(category="comm.rs")
            if s.metadata["iteration"] == 1
        ]
        assert len(ag) == 2 * tiny.num_tensors
        assert len(rs) == tiny.num_tensors

    def test_volume_is_1_5x_dear(self, tiny, timing, cost):
        """The §VII-B claim: 3m vs DeAR's 2m per iteration."""
        zero = get_scheduler("zero", buffer_bytes=25e6).run(timing, cost)
        dear = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            timing, cost
        )

        def volume(result):
            return sum(
                s.metadata["bytes"] for s in result.tracer.spans
                if s.category in ("comm.rs", "comm.ag")
                and s.metadata["iteration"] == 2
            )

        assert volume(zero) == pytest.approx(1.5 * volume(dear))

    def test_never_faster_than_dear(self, timing, cost):
        zero = get_scheduler("zero", buffer_bytes=25e6).run(timing, cost)
        dear = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            timing, cost
        )
        assert zero.iteration_time >= dear.iteration_time - 1e-9

    def test_forward_gather_precedes_layer_compute(self, timing, cost):
        result = get_scheduler("zero", buffer_bytes=None).run(timing, cost,
                                                              iterations=3)
        # For each forward gather of iteration 2, the matching FF span
        # must start no earlier than the gather ends.
        gathers = {
            s.name.split(".g")[-1]: s.end
            for s in result.tracer.filter(category="comm.ag")
            if s.metadata["iteration"] == 2 and ".fwd" in s.name
        }
        assert gathers  # sanity
        ff_starts = {
            s.metadata["layer"]: s.start
            for s in result.tracer.filter(category="ff")
            if s.metadata["iteration"] == 2
        }
        assert min(ff_starts.values()) >= min(gathers.values()) - 1e-12

    def test_registry_name(self):
        assert get_scheduler("zero").name == "zero"
