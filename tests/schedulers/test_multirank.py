"""Tests for the heterogeneous multi-rank simulator."""

import pytest

from repro.network.presets import cluster_10gbe
from repro.schedulers.base import simulate
from repro.schedulers.multirank import simulate_heterogeneous
from tests.conftest import build_tiny_model


CLUSTER = cluster_10gbe(nodes=2, gpus_per_node=2)  # 4 ranks, fast tests


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_model()


class TestHomogeneousAgreement:
    @pytest.mark.parametrize("policy,rep_options", [
        ("wfbp", {}),
        ("dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
    ])
    def test_matches_representative_engine(self, tiny, policy, rep_options):
        # collapse=False forces the genuine multi-rank engine; the
        # collapse shortcut is covered by the differential suite.
        multi = simulate_heterogeneous(
            policy, tiny, CLUSTER, [1.0] * 4,
            fusion_buffer_bytes=rep_options.get("buffer_bytes"),
            iteration_compute=0.03, collapse=False,
        )
        representative = simulate(
            policy, tiny, CLUSTER, iteration_compute=0.03, **rep_options
        )
        assert multi.iteration_time == pytest.approx(
            representative.iteration_time, rel=1e-9
        )

    def test_wfbp_no_fusion_matches(self, tiny):
        multi = simulate_heterogeneous(
            "wfbp", tiny, CLUSTER, [1.0] * 4, fusion_buffer_bytes=None,
            iteration_compute=0.03, collapse=False,
        )
        representative = simulate("wfbp", tiny, CLUSTER, iteration_compute=0.03)
        assert multi.iteration_time == pytest.approx(
            representative.iteration_time, rel=1e-9
        )

    def test_horovod_matches_representative(self, tiny):
        """Multi-rank Horovod charges the full representative overhead —
        per-group negotiation plus the expected half coordinator cycle —
        so the homogeneous runs must agree exactly."""
        multi = simulate_heterogeneous(
            "horovod", tiny, CLUSTER, [1.0] * 4,
            fusion_buffer_bytes=25e6, iteration_compute=0.03,
            collapse=False,
        )
        representative = simulate(
            "horovod", tiny, CLUSTER, buffer_bytes=25e6,
            iteration_compute=0.03,
        )
        assert multi.iteration_time == pytest.approx(
            representative.iteration_time, rel=1e-9
        )


class TestStragglers:
    def test_straggler_slows_everyone(self, tiny):
        base = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [1.0] * 4, iteration_compute=0.03
        )
        slow = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [1.0, 1.0, 1.0, 1.5], iteration_compute=0.03
        )
        assert slow.iteration_time > base.iteration_time

    def test_degradation_monotone_in_factor(self, tiny):
        times = []
        for factor in (1.0, 1.2, 1.4):
            result = simulate_heterogeneous(
                "wfbp", tiny, CLUSTER, [1.0, 1.0, 1.0, factor],
                iteration_compute=0.03,
            )
            times.append(result.iteration_time)
        assert times == sorted(times)

    def test_straggler_position_irrelevant(self, tiny):
        """Symmetric collectives: which rank is slow must not matter."""
        first = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [1.3, 1.0, 1.0, 1.0], iteration_compute=0.03
        )
        last = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [1.0, 1.0, 1.0, 1.3], iteration_compute=0.03
        )
        assert first.iteration_time == pytest.approx(last.iteration_time, rel=1e-9)

    def test_uniformly_slower_cluster_scales_compute(self, tiny):
        base = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [1.0] * 4, iteration_compute=0.03
        )
        slowed = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [2.0] * 4, iteration_compute=0.03
        )
        assert slowed.iteration_time > base.iteration_time

    def test_dear_never_behind_wfbp(self, tiny):
        for scales in ([1.0] * 4, [1.0, 1.1, 1.2, 1.3]):
            wfbp = simulate_heterogeneous(
                "wfbp", tiny, CLUSTER, scales, iteration_compute=0.03
            )
            dear = simulate_heterogeneous(
                "dear", tiny, CLUSTER, scales, iteration_compute=0.03
            )
            assert dear.iteration_time <= wfbp.iteration_time + 1e-9


class TestHorovodPolicy:
    def test_negotiation_costs_over_wfbp(self, tiny):
        wfbp = simulate_heterogeneous(
            "wfbp", tiny, CLUSTER, [1.0] * 4,
            fusion_buffer_bytes=25e6, iteration_compute=0.03,
        )
        horovod = simulate_heterogeneous(
            "horovod", tiny, CLUSTER, [1.0] * 4,
            fusion_buffer_bytes=25e6, iteration_compute=0.03,
        )
        assert horovod.iteration_time > wfbp.iteration_time

    def test_straggler_monotone(self, tiny):
        times = [
            simulate_heterogeneous(
                "horovod", tiny, CLUSTER, [1.0, 1.0, 1.0, factor],
                iteration_compute=0.03,
            ).iteration_time
            for factor in (1.0, 1.3)
        ]
        assert times[1] > times[0]


class TestValidation:
    def test_wrong_scale_count(self, tiny):
        with pytest.raises(ValueError):
            simulate_heterogeneous(
                "dear", tiny, CLUSTER, [1.0] * 3, iteration_compute=0.03
            )

    def test_unknown_policy(self, tiny):
        with pytest.raises(ValueError):
            simulate_heterogeneous(
                "psychic", tiny, CLUSTER, [1.0] * 4, iteration_compute=0.03
            )

    def test_minimum_iterations(self, tiny):
        with pytest.raises(ValueError):
            simulate_heterogeneous(
                "dear", tiny, CLUSTER, [1.0] * 4, iterations=2,
                iteration_compute=0.03,
            )

    def test_collective_oversubscription_detected(self):
        from repro.schedulers.multirank import _Collective
        from repro.sim.engine import Simulator

        sim = Simulator()
        collective = _Collective(sim, world_size=2, duration=1.0, name="c")
        collective.arrive()
        collective.arrive()
        with pytest.raises(RuntimeError, match="over-subscribed"):
            collective.arrive()

    def test_steady_state_reached(self, tiny):
        result = simulate_heterogeneous(
            "dear", tiny, CLUSTER, [1.0, 1.2, 1.0, 1.1],
            iteration_compute=0.03, iterations=6,
        )
        gaps = result.iteration_times
        assert gaps[-1] == pytest.approx(gaps[-2], rel=1e-6)
