"""Test package."""
