"""Per-scheduler behavioural tests against analytically known timings.

The tiny fixture model makes exact hand-computation possible: with the
cost model's times for each group, the expected iteration time of each
schedule can be checked against the simulator's answer.
"""

import pytest

from repro.core.fusion import no_fusion_groups
from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.schedulers.base import get_scheduler
from tests.conftest import build_tiny_model


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_model()


@pytest.fixture(scope="module")
def timing(tiny):
    return TimingModel.for_model(tiny, iteration_compute=0.03)


@pytest.fixture(scope="module")
def cost(ethernet_cluster):
    return CollectiveTimeModel(ethernet_cluster)


class TestSerial:
    def test_iteration_is_compute_plus_comm(self, tiny, timing, cost):
        result = get_scheduler("serial").run(timing, cost)
        plan = no_fusion_groups(tiny)
        comm = sum(cost.all_reduce(g.nbytes) for g in plan)
        expected = timing.t_ff + timing.t_bp + comm
        assert result.iteration_time == pytest.approx(expected, rel=1e-6)

    def test_fused_serial_faster(self, timing, cost):
        per_tensor = get_scheduler("serial").run(timing, cost)
        fused = get_scheduler("serial", buffer_bytes=1e9).run(timing, cost)
        assert fused.iteration_time < per_tensor.iteration_time

    def test_exposed_comm_is_all_comm(self, tiny, timing, cost):
        result = get_scheduler("serial").run(timing, cost)
        plan = no_fusion_groups(tiny)
        comm = sum(cost.all_reduce(g.nbytes) for g in plan)
        assert result.exposed_comm == pytest.approx(comm, rel=1e-6)


class TestWFBP:
    def test_faster_than_serial(self, timing, cost):
        serial = get_scheduler("serial").run(timing, cost)
        wfbp = get_scheduler("wfbp").run(timing, cost)
        assert wfbp.iteration_time < serial.iteration_time

    def test_never_faster_than_comm_bound(self, tiny, timing, cost):
        """Comm is FIFO on one stream: iteration >= total comm time."""
        result = get_scheduler("wfbp").run(timing, cost)
        plan = no_fusion_groups(tiny)
        comm = sum(cost.all_reduce(g.nbytes) for g in plan)
        assert result.iteration_time >= comm - 1e-9

    def test_never_faster_than_compute_bound(self, timing, cost):
        result = get_scheduler("wfbp").run(timing, cost)
        assert result.iteration_time >= timing.t_ff + timing.t_bp - 1e-9

    def test_last_layer_comm_cannot_overlap_bp(self, tiny, timing, cost):
        """The first layer's all-reduce only starts after all of BP, so
        WFBP's iteration >= t_ff + t_bp + t_ar(first-layer tensors)."""
        result = get_scheduler("wfbp").run(timing, cost)
        first_layer_bytes = tiny.layers[0].nbytes
        bound = timing.t_ff + timing.t_bp + cost.all_reduce(first_layer_bytes)
        assert result.iteration_time >= bound - 1e-9

    def test_fusion_reduces_startup(self, timing, cost):
        plain = get_scheduler("wfbp").run(timing, cost)
        fused = get_scheduler("wfbp", buffer_bytes=25e6).run(timing, cost)
        assert fused.iteration_time <= plain.iteration_time


class TestDDPAndHorovod:
    def test_ddp_beats_unfused_wfbp(self, timing, cost):
        wfbp = get_scheduler("wfbp").run(timing, cost)
        ddp = get_scheduler("ddp").run(timing, cost)
        assert ddp.iteration_time < wfbp.iteration_time

    def test_horovod_pays_negotiation_over_ddp(self, timing, cost):
        ddp = get_scheduler("ddp", buffer_bytes=25e6, launch_overhead=0.0).run(
            timing, cost
        )
        horovod = get_scheduler("horovod", buffer_bytes=25e6).run(timing, cost)
        assert horovod.iteration_time > ddp.iteration_time

    def test_horovod_negotiation_scales_with_cycle(self, timing, cost):
        fast = get_scheduler("horovod", buffer_bytes=25e6, cycle_time=1e-4).run(
            timing, cost
        )
        slow = get_scheduler("horovod", buffer_bytes=25e6, cycle_time=10e-3).run(
            timing, cost
        )
        assert slow.iteration_time > fast.iteration_time

    def test_ddp_rejects_no_bucket(self):
        with pytest.raises(ValueError):
            get_scheduler("ddp", buffer_bytes=None)

    def test_horovod_bo_returns_tuned_result(self, timing, cost):
        result = get_scheduler("horovod", fusion="bo", bo_trials=5).run(timing, cost)
        assert result.extras["fusion"] == "bo"
        assert len(result.extras["bo_history"]) == 5
        assert result.scheduler == "horovod"

    def test_horovod_unknown_fusion(self):
        with pytest.raises(ValueError):
            get_scheduler("horovod", fusion="psychic")


class TestMGWFBP:
    def test_beats_unfused_wfbp(self, timing, cost):
        wfbp = get_scheduler("wfbp").run(timing, cost)
        mg = get_scheduler("mg_wfbp").run(timing, cost)
        assert mg.iteration_time < wfbp.iteration_time

    def test_startup_scale_zero_gives_per_layer_groups(self, tiny, timing, cost):
        """With a zero merge window only zero-gap (same-layer) tensors
        merge, so the plan has one group per layer and MG-WFBP is at
        least as fast as per-tensor WFBP."""
        wfbp = get_scheduler("wfbp").run(timing, cost)
        mg = get_scheduler("mg_wfbp", startup_scale=0.0).run(timing, cost)
        assert mg.iteration_time <= wfbp.iteration_time + 1e-12
        spans = [
            s for s in mg.tracer.filter(category="comm.ar")
            if s.metadata["iteration"] == 2
        ]
        assert len(spans) == tiny.num_layers

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scheduler("mg_wfbp", startup_scale=-1)


class TestByteScheduler:
    def test_slower_than_wfbp_on_latency_bound_model(self, timing, cost):
        """Per-op negotiation on 10GbE makes BS lose on small tensors
        (the paper's CNN observation)."""
        wfbp = get_scheduler("wfbp").run(timing, cost)
        bs = get_scheduler("bytescheduler").run(timing, cost)
        assert bs.iteration_time > wfbp.iteration_time

    def test_negotiation_off_recovers(self, timing, cost):
        with_neg = get_scheduler("bytescheduler").run(timing, cost)
        without = get_scheduler("bytescheduler", negotiate=False).run(timing, cost)
        assert without.iteration_time < with_neg.iteration_time

    def test_partitioning_increases_collective_count(self, timing, cost):
        coarse = get_scheduler("bytescheduler", negotiate=False,
                               partition_bytes=1e9).run(timing, cost)
        fine = get_scheduler("bytescheduler", negotiate=False,
                             partition_bytes=50e3).run(timing, cost)
        count = lambda r: len(r.tracer.filter(category="comm.ar"))
        assert count(fine) > count(coarse)

    def test_invalid_partition_size(self):
        with pytest.raises(ValueError):
            get_scheduler("bytescheduler", partition_bytes=0)

    def test_invalid_credit(self):
        with pytest.raises(ValueError):
            get_scheduler("bytescheduler", credit=0)

    def test_credit_overlaps_latency_rounds(self, timing, cost):
        """Credit > 1 pipelines startup latencies across channels; on a
        latency-bound workload it must speed things up, and never past
        the proportional bound."""
        single = get_scheduler("bytescheduler", credit=1).run(timing, cost)
        quad = get_scheduler("bytescheduler", credit=4).run(timing, cost)
        assert quad.iteration_time < single.iteration_time
        assert quad.iteration_time >= single.iteration_time / 4 - 1e-9

    def test_credit_reaches_steady_state(self, timing, cost):
        result = get_scheduler("bytescheduler", credit=3).run(
            timing, cost, iterations=6
        )
        gaps = result.iteration_times
        assert gaps[-1] == pytest.approx(gaps[-2], rel=1e-9)

    def test_credit_completes_all_partitions(self, tiny, timing, cost):
        result = get_scheduler(
            "bytescheduler", credit=2, partition_bytes=100e3
        ).run(timing, cost, iterations=3)
        import math

        expected = 3 * sum(
            max(1, math.ceil(t.nbytes / 100e3))
            for t in tiny.tensors_backward_order()
        )
        spans = result.tracer.filter(category="comm.ar")
        assert len(spans) == expected

    def test_all_partitions_complete(self, tiny, timing, cost):
        import math

        result = get_scheduler("bytescheduler", partition_bytes=100e3).run(
            timing, cost, iterations=3
        )
        expected_per_iter = sum(
            max(1, math.ceil(t.nbytes / 100e3))
            for t in tiny.tensors_backward_order()
        )
        spans = result.tracer.filter(category="comm.ar")
        assert len(spans) == 3 * expected_per_iter


class TestDeAR:
    def test_beats_wfbp_without_fusion(self, timing, cost):
        wfbp = get_scheduler("wfbp").run(timing, cost)
        dear = get_scheduler("dear", fusion="none").run(timing, cost)
        assert dear.iteration_time < wfbp.iteration_time

    def test_rs_and_ag_collective_counts(self, tiny, timing, cost):
        result = get_scheduler("dear", fusion="none").run(timing, cost, iterations=3)
        rs = result.tracer.filter(category="comm.rs")
        ag = result.tracer.filter(category="comm.ag")
        assert len(rs) == len(ag) == 3 * tiny.num_tensors

    def test_fusion_variants_all_run(self, timing, cost):
        for fusion, kwargs in [
            ("none", {}),
            ("layers", {"layers_per_group": 3}),
            ("buffer", {"buffer_bytes": 5e6}),
        ]:
            result = get_scheduler("dear", fusion=fusion, **kwargs).run(timing, cost)
            assert result.iteration_time > 0

    def test_bo_meets_or_beats_fixed_buffer(self, timing, cost):
        fixed = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            timing, cost
        )
        tuned = get_scheduler("dear", fusion="bo", bo_trials=8).run(timing, cost)
        assert tuned.iteration_time <= fixed.iteration_time * 1.0001

    def test_unknown_fusion_rejected(self):
        with pytest.raises(ValueError):
            get_scheduler("dear", fusion="entropy")

    def test_never_beats_theoretical_floor(self, tiny, timing, cost):
        """iteration >= max(compute, total comm) for any fusion."""
        plan_bytes = tiny.gradient_bytes
        floor = max(
            timing.t_ff + timing.t_bp,
            cost.reduce_scatter(plan_bytes) + cost.all_gather(plan_bytes),
        )
        result = get_scheduler("dear", fusion="buffer", buffer_bytes=1e9).run(
            timing, cost
        )
        assert result.iteration_time >= floor - 1e-9

    def test_ag_issued_in_forward_order(self, timing, cost):
        result = get_scheduler("dear", fusion="buffer", buffer_bytes=200e3).run(
            timing, cost
        )
        ag_spans = [
            span for span in result.tracer.filter(category="comm.ag")
            if span.metadata["iteration"] == 2
        ]
        starts = [span.start for span in ag_spans]
        assert starts == sorted(starts)
        # Forward order = descending group index (group 0 is last layers).
        labels = [span.name.split(".g")[-1] for span in ag_spans]
        assert labels == sorted(labels, key=int, reverse=True)
