"""Closed-form validation: the DES must match hand-derivable schedules.

In degenerate regimes every scheduler's steady-state iteration time has
an exact closed form; these tests pin the simulator to them.
"""

import pytest

from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.network.fabric import ClusterSpec, LinkSpec
from repro.schedulers.base import get_scheduler
from tests.conftest import build_tiny_model


def _cluster(latency: float, bandwidth: float) -> ClusterSpec:
    link = LinkSpec("test", latency=latency, bandwidth=bandwidth)
    return ClusterSpec(
        name="test", nodes=8, gpus_per_node=1, inter_link=link, intra_link=link
    )


@pytest.fixture(scope="module")
def model():
    return build_tiny_model()


@pytest.fixture(scope="module")
def timing(model):
    return TimingModel.for_model(model, iteration_compute=0.03)


ALL_SCHEDULERS = [
    ("serial", {}),
    ("wfbp", {}),
    ("ddp", {"buffer_bytes": 25e6, "launch_overhead": 0.0}),
    ("horovod", {"buffer_bytes": 25e6, "cycle_time": 0.0}),
    ("mg_wfbp", {}),
    ("bytescheduler", {"negotiate": False}),
    ("dear", {"fusion": "none"}),
    ("dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
    ("zero", {"buffer_bytes": 25e6}),
]


class TestFreeCommunicationRegime:
    """Near-infinite bandwidth + zero latency: every scheduler collapses
    to pure compute, t_ff + t_bp (except ZeRO, whose backward gathers
    are still on the compute critical path only via gates — also free)."""

    @pytest.mark.parametrize("name,options", ALL_SCHEDULERS)
    def test_iteration_is_pure_compute(self, timing, name, options):
        cost = CollectiveTimeModel(_cluster(latency=0.0, bandwidth=1e18))
        result = get_scheduler(name, **options).run(timing, cost)
        if name == "horovod":
            # Horovod still pays its (tiny but nonzero) negotiation.
            assert result.iteration_time == pytest.approx(
                timing.t_ff + timing.t_bp, rel=1e-6
            )
        else:
            assert result.iteration_time == pytest.approx(
                timing.t_ff + timing.t_bp, rel=1e-9
            )


class TestCommunicationDominatedRegime:
    """Communication >> compute: the comm stream is the bottleneck and
    the iteration equals the serialised communication time exactly."""

    @pytest.fixture(scope="class")
    def slow_cost(self):
        # Low bandwidth makes comm ~50x compute.
        return CollectiveTimeModel(_cluster(latency=0.0, bandwidth=2e6))

    @staticmethod
    def _restart_gap(timing):
        """The comm stream's unavoidable idle per cycle: the next
        iteration's first gradient arrives only after the forward pass
        and the last layer's backward kernel."""
        return timing.t_ff + timing.bp_time(timing.model.num_layers - 1)

    def test_wfbp_equals_total_allreduce_time(self, model, timing, slow_cost):
        result = get_scheduler("wfbp").run(timing, slow_cost)
        total = sum(
            slow_cost.all_reduce(t.nbytes)
            for t in model.tensors_backward_order()
        )
        expected = total + self._restart_gap(timing)
        assert result.iteration_time == pytest.approx(expected, rel=1e-9)

    def test_dear_restart_gap_is_per_layer_not_per_pass(
        self, model, timing, slow_cost
    ):
        """FeedPipe quantified: DeAR's all-gathers run *under* the next
        forward pass, so its comm stream only idles for the LAST layer's
        forward + backward kernels — per-layer, where WFBP's gap is the
        whole forward pass (the previous test)."""
        result = get_scheduler("dear", fusion="none").run(timing, slow_cost)
        total = sum(
            slow_cost.reduce_scatter(t.nbytes) + slow_cost.all_gather(t.nbytes)
            for t in model.tensors_backward_order()
        )
        last = model.num_layers - 1
        dear_gap = timing.ff_time(last) + timing.bp_time(last)
        assert result.iteration_time == pytest.approx(total + dear_gap, rel=1e-9)

    def test_dear_beats_wfbp_by_exactly_the_gap_difference(self, timing, slow_cost):
        """Same bytes on one serial comm stream: the only difference in
        the comm-bound regime is the restart gap, which is where the
        'saved at most one t_ff' of Eq. 9 lives."""
        wfbp = get_scheduler("wfbp").run(timing, slow_cost)
        dear = get_scheduler("dear", fusion="none").run(timing, slow_cost)
        last = timing.model.num_layers - 1
        gap_difference = self._restart_gap(timing) - (
            timing.ff_time(last) + timing.bp_time(last)
        )
        assert wfbp.iteration_time - dear.iteration_time == pytest.approx(
            gap_difference, rel=1e-9
        )

    def test_zero_single_group_pays_full_backward(self, model, timing, slow_cost):
        """With one FSDP unit, ZeRO's backward cannot start until the
        whole backward gather lands and its reduce-scatter cannot start
        until the whole backward pass ends: cycle = 3m comm + t_bp."""
        zero = get_scheduler("zero", buffer_bytes=1e12).run(timing, slow_cost)
        m = model.gradient_bytes
        expected = (
            2 * slow_cost.all_gather(m)
            + slow_cost.reduce_scatter(m)
            + timing.t_bp
        )
        assert zero.iteration_time == pytest.approx(expected, rel=1e-9)

    def test_zero_approaches_1_5x_dear_when_comm_bound(self, timing, slow_cost):
        dear = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            timing, slow_cost
        )
        zero = get_scheduler("zero", buffer_bytes=25e6).run(timing, slow_cost)
        # Volumes are 3m vs 2m; the residual compute gaps shift the
        # ratio only slightly at comm ~50x compute.
        assert zero.iteration_time / dear.iteration_time == pytest.approx(
            1.5, rel=0.05
        )

    def test_horovod_overhead_is_exactly_per_group_negotiation(
        self, model, timing, slow_cost
    ):
        ddp = get_scheduler("ddp", buffer_bytes=25e6, launch_overhead=0.0).run(
            timing, slow_cost
        )
        cycle = 2e-3
        horovod = get_scheduler(
            "horovod", buffer_bytes=25e6, cycle_time=cycle
        ).run(timing, slow_cost)
        from repro.core.fusion import buffer_size_groups

        plan = buffer_size_groups(model, 25e6)
        expected_extra = sum(
            slow_cost.negotiation(8.0 * len(group.tensors)) + 0.5 * cycle
            for group in plan
        )
        assert horovod.iteration_time - ddp.iteration_time == pytest.approx(
            expected_extra, rel=1e-9
        )


class TestSingleGroupDegeneracy:
    """With the whole model fused into ONE group, DeAR loses all its
    pipelining (the group's RS waits for the full backward pass; the
    first forward layer waits for the group's AG) and every fused
    scheduler degenerates to the same serial schedule:
    t_ff + t_bp + t_comm."""

    def test_dear_equals_serial_fused(self, model, timing, ethernet_cost):
        serial = get_scheduler("serial", buffer_bytes=1e12).run(
            timing, ethernet_cost
        )
        dear = get_scheduler("dear", fusion="buffer", buffer_bytes=1e12).run(
            timing, ethernet_cost
        )
        wfbp = get_scheduler("wfbp", buffer_bytes=1e12).run(timing, ethernet_cost)
        expected = (
            timing.t_ff + timing.t_bp + ethernet_cost.all_reduce(model.gradient_bytes)
        )
        for result in (serial, dear, wfbp):
            assert result.iteration_time == pytest.approx(expected, rel=1e-9)

    def test_fusion_extremes_bracket_intermediate(self, timing, ethernet_cost):
        """Intermediate fusion beats both extremes on the tiny model at
        the calibrated fabric (the Fig. 3/9 premise)."""
        one_group = get_scheduler("dear", fusion="buffer", buffer_bytes=1e12).run(
            timing, ethernet_cost
        )
        per_tensor = get_scheduler("dear", fusion="none").run(timing, ethernet_cost)
        mid = get_scheduler("dear", fusion="buffer", buffer_bytes=2e6).run(
            timing, ethernet_cost
        )
        assert mid.iteration_time <= one_group.iteration_time + 1e-12
        assert mid.iteration_time <= per_tensor.iteration_time + 1e-12
