"""Test package."""
