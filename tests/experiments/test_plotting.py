"""Tests for the ASCII figure rendering."""


from repro.experiments.plotting import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_longest_bar_fills_width(self):
        text = bar_chart([("a", 2.0), ("b", 1.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        text = bar_chart([("short", 1.0), ("a-long-label", 1.0)])
        lines = text.splitlines()
        bar_starts = {line.index("█") for line in lines}
        assert len(bar_starts) == 1

    def test_title_rendered(self):
        text = bar_chart([("a", 1.0)], title="My Figure")
        assert text.splitlines()[0] == "My Figure"

    def test_values_printed_with_unit(self):
        text = bar_chart([("a", 1.5)], unit="x")
        assert "1.5x" in text

    def test_zero_values_no_bar(self):
        text = bar_chart([("a", 0.0), ("b", 1.0)])
        lines = text.splitlines()
        assert "█" not in lines[0]

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_fractional_cells_use_partial_blocks(self):
        text = bar_chart([("a", 1.0), ("b", 0.55)], width=10)
        partials = set("▏▎▍▌▋▊▉")
        assert any(ch in partials for ch in text)


class TestGroupedBarChart:
    ROWS = [
        {"model": "A", "x": 1.0, "y": 2.0},
        {"model": "B", "x": 0.5, "y": 1.0},
    ]

    def test_one_block_per_row(self):
        text = grouped_bar_chart(self.ROWS, "model", ["x", "y"])
        assert "A:" in text and "B:" in text

    def test_global_scale_across_groups(self):
        text = grouped_bar_chart(self.ROWS, "model", ["x", "y"], width=8)
        lines = [line for line in text.splitlines() if "█" in line]
        # y of A is the global max -> 8 cells; x of B -> 2 cells.
        assert max(line.count("█") for line in lines) == 8
        assert min(line.count("█") for line in lines) == 2

    def test_baseline_marked(self):
        text = grouped_bar_chart(
            self.ROWS, "model", ["x", "y"], baseline=1.0, unit="x"
        )
        assert "(baseline)" in text

    def test_empty(self):
        assert grouped_bar_chart([], "model", ["x"]) == "(no data)"


class TestHarnessCharts:
    def test_fig6_chart_renders(self):
        from repro.experiments import fig6
        from repro.experiments.fig6 import format_chart

        rows = fig6(models=("resnet50",), networks=("10gbe",))
        text = format_chart(rows)
        assert "WFBP = 1.0" in text
        assert "ResNet-50" in text

    def test_fig8_chart_renders(self):
        from repro.experiments import fig8
        from repro.experiments.fig8 import format_chart

        rows = fig8(models=("resnet50",))
        text = format_chart(rows)
        assert "DeAR (RS-only)" in text

    def test_fig11_chart_renders(self):
        from repro.experiments import fig11
        from repro.experiments.fig11 import format_chart

        rows = fig11(workloads=(("resnet50", (32, 64)),))
        text = format_chart(rows)
        assert "BS=32" in text and "BS=64" in text
