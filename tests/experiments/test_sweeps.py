"""Tests for the fabric sensitivity sweeps."""

import pytest

from repro.experiments.sweeps import bandwidth_sweep, format_rows, latency_sweep


class TestLatencySweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return latency_sweep("resnet50", factors=(0.5, 1.0, 2.0))

    def test_rows_shape(self, rows):
        assert len(rows) == 3
        assert rows[1]["latency_factor"] == 1.0
        assert rows[1]["alpha_us"] == pytest.approx(23.0)

    def test_advantage_grows_with_latency(self, rows):
        advantages = [row["dear_advantage"] for row in rows]
        assert advantages == sorted(advantages)

    def test_both_slow_down(self, rows):
        for key in ("dear_iter_s", "horovod_iter_s"):
            series = [row[key] for row in rows]
            assert series == sorted(series)

    def test_format(self, rows):
        assert "dear_advantage" in format_rows(rows)


class TestBandwidthSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return bandwidth_sweep("bert_base", factors=(1.0, 4.0))

    def test_more_bandwidth_is_faster(self, rows):
        assert rows[1]["dear_iter_s"] < rows[0]["dear_iter_s"]
        assert rows[1]["horovod_iter_s"] < rows[0]["horovod_iter_s"]

    def test_bandwidth_labels(self, rows):
        assert rows[0]["bandwidth_gbps"] == pytest.approx(10.0)
        assert rows[1]["bandwidth_gbps"] == pytest.approx(40.0)

    def test_dear_never_loses(self, rows):
        assert all(row["dear_advantage"] >= 0.999 for row in rows)
