"""Tests for experiment-harness helpers and variant paths."""

import pytest

from repro.experiments.common import (
    format_table,
    resolve_cluster,
    resolve_model,
    throughput_objective,
)
from repro.models.zoo import get_model
from repro.network.fabric import ClusterSpec
from repro.network.presets import cluster_10gbe


class TestResolvers:
    def test_resolve_model_by_name(self):
        assert resolve_model("resnet50") is get_model("resnet50")

    def test_resolve_model_passthrough(self):
        model = get_model("bert_base")
        assert resolve_model(model) is model

    def test_resolve_cluster_by_name(self):
        cluster = resolve_cluster("10gbe")
        assert isinstance(cluster, ClusterSpec)
        assert cluster.world_size == 64

    def test_resolve_cluster_passthrough(self):
        cluster = cluster_10gbe(nodes=2)
        assert resolve_cluster(cluster) is cluster

    def test_resolve_cluster_unknown(self):
        with pytest.raises(ValueError):
            resolve_cluster("token-ring")


class TestFormatTable:
    def test_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_missing_keys_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=["a", "b"])
        assert len(text.splitlines()) == 4

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456}])
        assert "0.123" in text

    def test_small_float_uses_scientific(self):
        text = format_table([{"v": 1.5e-7}])
        assert "e-07" in text


class TestObjectiveVariants:
    def test_fig7_bo_variant_runs(self):
        from repro.experiments.fig7 import run

        rows = run(models=("resnet50",), networks=("100gbib",),
                   dear_fusion="bo")
        assert rows[0]["dear"] > 0.95

    def test_table2_buffer_variant_runs(self):
        from repro.experiments.table2 import run

        rows = run(models=("resnet50",), networks=("10gbe",),
                   dear_fusion="buffer")
        assert rows[0]["s"] <= rows[0]["s_max"] * 1.005

    def test_fig5_alternative_algorithm(self):
        from repro.experiments.fig5 import run

        rows = run(algorithm="tree", points_per_range=3)
        for row in rows:
            assert row["rsag_over_ar"] == pytest.approx(1.0)

    def test_objective_evaluations_bounded_by_grid(self):
        objective = throughput_objective(
            "resnet50", "10gbe", grid_points=16
        )
        objective.optimum()
        objective.optimum()  # cached: no second sweep
        assert objective.evaluations == 16
