"""Each experiment harness must run and produce structurally sane rows."""

import pytest

from repro.experiments import (
    fig10,
    fig11,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
)
from repro.experiments.common import format_table, throughput_objective


class TestTable1:
    def test_matches_paper_exactly(self):
        for row in table1():
            assert row["layers"] == row["layers_paper"]
            assert row["tensors"] == row["tensors_paper"]
            assert row["params_M"] == pytest.approx(row["params_M_paper"], rel=0.005)


class TestFig3:
    def test_bo_finds_near_optimum_in_nine_samples(self):
        rows = fig3(samples=9)
        summary = next(r for r in rows if r["kind"] == "summary")
        assert summary["fraction_of_optimum"] >= 0.9
        samples = [r for r in rows if r["kind"] == "sample"]
        assert len(samples) == 9
        assert samples[0]["buffer_mb"] == pytest.approx(25.0)  # paper's x1

    def test_posterior_rows_present(self):
        rows = fig3(samples=5, posterior_points=10)
        posterior = [r for r in rows if r["kind"] == "posterior"]
        assert len(posterior) == 10
        assert all(r["std"] >= 0 for r in posterior)


class TestFig5:
    def test_rsag_equals_allreduce(self):
        for row in fig5():
            assert row["rsag_over_ar"] == pytest.approx(1.0)

    def test_rs_and_ag_each_half(self):
        for row in fig5():
            assert row["reduce_scatter_ms"] == pytest.approx(
                row["allreduce_ms"] / 2
            )
            assert row["all_gather_ms"] == pytest.approx(row["allreduce_ms"] / 2)

    def test_paper_spot_checks(self):
        from repro.experiments.paper_data import FIG5_SPOT_CHECKS

        rows = fig5(points_per_range=25)
        for nbytes, seconds in FIG5_SPOT_CHECKS:
            closest = min(rows, key=lambda r: abs(r["bytes"] - nbytes))
            assert closest["allreduce_ms"] == pytest.approx(
                seconds * 1e3, rel=0.12
            )

    def test_both_panels_present(self):
        rows = fig5()
        panels = {row["panel"] for row in rows}
        assert panels == {"small", "large"}


class TestFig6:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig6(models=("resnet50", "bert_base"))

    def test_dear_beats_wfbp_everywhere(self, rows):
        for row in rows:
            assert row["dear"] >= 1.0, row

    def test_bytescheduler_collapses_on_10gbe_cnn(self, rows):
        cnn = next(
            r for r in rows if r["model"] == "ResNet-50" and "10GbE" in r["network"]
        )
        assert cnn["bytescheduler"] < 0.95

    def test_wfbp_is_unit_baseline(self, rows):
        assert all(row["wfbp"] == 1.0 for row in rows)


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7(models=("resnet50", "bert_base"))

    def test_dear_beats_horovod_everywhere(self, rows):
        for row in rows:
            assert row["dear"] >= 1.0, row

    def test_gains_larger_on_ethernet(self, rows):
        for model in ("ResNet-50", "BERT-Base"):
            eth = next(r for r in rows if r["model"] == model and "10GbE" in r["network"])
            ib = next(r for r in rows if r["model"] == model and "IB" in r["network"])
            assert eth["dear"] >= ib["dear"] - 0.02


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2(models=("resnet50", "bert_large"), dear_fusion="bo",
                      bo_trials=8)

    def test_s_below_smax(self, rows):
        for row in rows:
            assert row["s"] <= row["s_max"] * 1.005, row

    def test_smax_matches_paper(self, rows):
        for row in rows:
            assert row["s_max"] == pytest.approx(row["paper_s_max"], rel=0.03)

    def test_dear_reaches_high_fraction(self, rows):
        """Paper: 72.3-99.2% of the optimum across all cells."""
        for row in rows:
            assert row["ratio_pct"] >= 70.0, row


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig8(models=("resnet50", "bert_base"))

    def test_four_views_per_model(self, rows):
        views = [r["view"] for r in rows if r["model"] == "ResNet-50"]
        assert views == ["Horovod", "DeAR", "DeAR (RS-only)", "DeAR (AG-only)"]

    def test_dear_exposes_less_comm_than_horovod(self, rows):
        for model in ("ResNet-50", "BERT-Base"):
            horovod = next(
                r for r in rows if r["model"] == model and r["view"] == "Horovod"
            )
            dear = next(r for r in rows if r["model"] == model and r["view"] == "DeAR")
            assert dear["exposed_comm_s"] <= horovod["exposed_comm_s"] + 1e-9

    def test_rs_exposure_below_ag_exposure(self, rows):
        """§VI-F: reduce-scatter overlaps the longer backward pass, so
        its exposure is smaller than all-gather's."""
        for model in ("ResNet-50", "BERT-Base"):
            rs = next(
                r for r in rows
                if r["model"] == model and r["view"] == "DeAR (RS-only)"
            )
            ag = next(
                r for r in rows
                if r["model"] == model and r["view"] == "DeAR (AG-only)"
            )
            assert rs["exposed_comm_s"] <= ag["exposed_comm_s"] + 1e-9

    def test_ff_bp_same_across_views(self, rows):
        for model in ("ResNet-50",):
            ffs = {r["ff_s"] for r in rows if r["model"] == model}
            assert len(ffs) == 1  # same backend, same compute (§VI-F)


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9(models=("resnet50",), bo_trials=6)

    def test_bo_is_best_dear_variant(self, rows):
        # Within 1%: BO is a stochastic tuner with a small trial budget
        # here, and the claim is "matches or beats" the fixed policies.
        for row in rows:
            assert row["dear_bo"] >= row["dear_fb"] * 0.99
            assert row["dear_bo"] >= row["dear_nl"] * 0.99
            assert row["dear_bo"] >= row["dear_no_tf"] * 0.99

    def test_fusion_matters_on_ethernet(self, rows):
        eth = next(r for r in rows if "10GbE" in r["network"])
        assert eth["bo_vs_no_tf"] > 1.3  # paper: 1.35x-4.54x

    def test_bo_beats_horovod_fb(self, rows):
        for row in rows:
            assert row["bo_vs_horovod_fb"] > 1.0


class TestFig10:
    def test_bo_converges_fastest_on_average(self):
        rows = fig10(models=("resnet50", "bert_base"), seeds=(0, 1, 2))
        by_tuner = {}
        for row in rows:
            by_tuner.setdefault(row["tuner"], []).append(row["mean_trials"])
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(by_tuner["bo"]) <= mean(by_tuner["random"])
        assert mean(by_tuner["bo"]) <= mean(by_tuner["grid"])


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig11(workloads=(("resnet50", (16, 32, 64)),))

    def test_dear_at_least_matches_best_rival(self, rows):
        for row in rows:
            assert row["dear_vs_best_other"] >= 0.999, row

    def test_throughput_grows_with_batch(self, rows):
        """Larger local batches amortise communication."""
        values = [row["dear"] for row in rows]
        assert values == sorted(values)


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_throughput_objective_caches(self):
        objective = throughput_objective("resnet50", "10gbe")
        first = objective.true_value(25e6)
        evaluations = objective.evaluations
        second = objective.true_value(25e6)
        assert first == second
        assert objective.evaluations == evaluations

    def test_objective_snaps_to_grid(self):
        objective = throughput_objective("resnet50", "10gbe")
        snapped = objective.snap(24.9e6)
        assert snapped in set(objective.grid)
