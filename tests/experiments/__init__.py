"""Test package."""
