"""Tests for the Figs. 1-2 timeline reproduction."""

import pytest

from repro.experiments.plotting import ascii_timeline
from repro.experiments.timelines import format_chart, format_rows, run
from repro.sim.trace import Span


class TestAsciiTimeline:
    def _spans(self):
        return [
            Span("ff.0", "ff", "gpu.compute", 0.0, 1.0),
            Span("bp.0", "bp", "gpu.compute", 1.0, 3.0),
            Span("ar.0", "comm.ar", "gpu.comm", 1.5, 4.0),
        ]

    def test_lane_glyphs(self):
        text = ascii_timeline(self._spans(), 0.0, 4.0, width=8)
        compute, comm = [line for line in text.splitlines() if "|" in line]
        assert "F" in compute and "B" in compute
        assert "A" in comm

    def test_idle_dots(self):
        text = ascii_timeline(self._spans(), 0.0, 4.0, width=8)
        comm = [line for line in text.splitlines() if "comm" in line][0]
        assert comm.split("|")[1].startswith("..")

    def test_proportions(self):
        text = ascii_timeline(self._spans(), 0.0, 4.0, width=40)
        compute = [line for line in text.splitlines() if "compute" in line][0]
        bar = compute.split("|")[1]
        assert bar.count("F") == 10  # 1.0 of 4.0 over 40 columns
        assert bar.count("B") == 20

    def test_legend_present(self):
        text = ascii_timeline(self._spans(), 0.0, 4.0)
        assert "R=comm.rs" in text and ".=idle" in text

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ascii_timeline(self._spans(), 2.0, 1.0)


class TestTimelinesHarness:
    @pytest.fixture(scope="class")
    def rows(self):
        return run()

    def test_five_panels(self, rows):
        assert len(rows) == 5
        assert [row["scheduler"] for row in rows] == [
            "wfbp", "wfbp", "bytescheduler", "dear", "dear",
        ]

    def test_orderings_match_figures(self, rows):
        by_panel = {row["panel"]: row for row in rows}
        wfbp = by_panel["Fig 1(b)  WFBP"]
        fused = by_panel["Fig 1(c)  WFBP + fusion"]
        bytesched = by_panel["Fig 1(d)  ByteScheduler"]
        dear = by_panel["Fig 2(b)  DeAR w/o fusion"]
        dear_fused = by_panel["Fig 2(c)  DeAR + fusion"]
        assert fused["iteration_ms"] <= wfbp["iteration_ms"]
        assert dear["iteration_ms"] <= wfbp["iteration_ms"]
        assert dear_fused["iteration_ms"] <= fused["iteration_ms"]
        assert bytesched["iteration_ms"] >= wfbp["iteration_ms"]

    def test_chart_shows_dear_feedpipe(self, rows):
        """DeAR's panel must show all-gathers (G) while FF runs — the
        FeedPipe overlap that is the paper's whole point."""
        text = format_chart(rows)
        dear_block = text.split("Fig 2(c)")[1]
        compute, comm = [
            line.split("|")[1] for line in dear_block.splitlines() if "|" in line
        ]
        ff_columns = {i for i, c in enumerate(compute) if c == "F"}
        ag_columns = {i for i, c in enumerate(comm) if c == "G"}
        assert ff_columns & ag_columns  # simultaneous FF and AG

    def test_chart_shows_wfbp_serialised_forward(self, rows):
        """WFBP's panel must show NO communication under feed-forward."""
        text = format_chart(rows)
        wfbp_block = text.split("Fig 1(b)")[1].split("Fig 1(c)")[0]
        compute, comm = [
            line.split("|")[1] for line in wfbp_block.splitlines() if "|" in line
        ]
        ff_columns = {i for i, c in enumerate(compute) if c == "F"}
        busy_comm = {i for i, c in enumerate(comm) if c != "."}
        assert not (ff_columns & busy_comm)

    def test_format_rows_hides_internal_fields(self, rows):
        text = format_rows(rows)
        assert "_result" not in text
