"""Tests for the dear-repro command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)

    def test_run_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-50" in out
        assert "BERT-Large" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "rsag_over_ar" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0

    def test_json_export(self, capsys, tmp_path):
        import json

        out = tmp_path / "rows.json"
        assert main(["table1", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "table1" in payload
        assert len(payload["table1"]) == 5
        assert payload["table1"][0]["model"] == "ResNet-50"

    def test_json_export_strips_internal_fields(self, capsys, tmp_path):
        import json

        out = tmp_path / "timelines.json"
        assert main(["timelines", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        for row in payload["timelines"]:
            assert not any(key.startswith("_") for key in row)
