"""Tests for the dear-repro command-line interface."""

import json

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)

    def test_run_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-50" in out
        assert "BERT-Large" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "rsag_over_ar" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0

    def test_json_export(self, capsys, tmp_path):
        out = tmp_path / "rows.json"
        assert main(["table1", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "table1" in payload
        assert len(payload["table1"]) == 5
        assert payload["table1"][0]["model"] == "ResNet-50"

    def test_json_export_strips_internal_fields(self, capsys, tmp_path):
        out = tmp_path / "timelines.json"
        assert main(["timelines", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        for row in payload["timelines"]:
            assert not any(key.startswith("_") for key in row)

    def test_json_round_trip(self, capsys, tmp_path):
        """The --json dump reloads to exactly what the harness returns."""
        import importlib

        fig5 = importlib.import_module("repro.experiments.fig5")
        out = tmp_path / "fig5.json"
        assert main(["fig5", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        direct = json.loads(json.dumps([
            {key: value for key, value in row.items()
             if not key.startswith("_")}
            for row in fig5.run()
        ]))
        assert payload["fig5"] == direct

    def test_experiment_failure_is_one_line(self, capsys, monkeypatch):
        """A crashing experiment yields exit 1 and no traceback."""
        import importlib

        fig5 = importlib.import_module("repro.experiments.fig5")

        def explode():
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(fig5, "run", explode)
        assert main(["fig5"]) == 1
        err = capsys.readouterr().err
        assert "error: experiment 'fig5' failed: synthetic failure" in err
        assert "Traceback" not in err


class TestBenchCli:
    @pytest.fixture()
    def bench_env(self, tmp_path, monkeypatch):
        from repro.runner.cache import reset_default_cache

        monkeypatch.setenv("DEAR_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("DEAR_JOBS", "1")
        reset_default_cache()
        yield tmp_path
        reset_default_cache()

    def _metrics(self, path):
        payload = json.loads(path.read_text())
        return {
            suite: body["metrics"]
            for suite, body in payload["suites"].items()
            if suite != "simcore"  # wall-clock numbers, never cached
        }

    def test_bench_quick_produces_artifact(self, capsys, bench_env):
        assert main(["bench", "--quick", "--output", str(bench_env)]) == 0
        artifacts = list(bench_env.glob("BENCH_*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["schema"] == "dear-bench-v1"
        assert payload["quick"] is True
        assert set(payload["suites"]) == {"schedulers", "fusion", "sweeps",
                                          "tuned", "workloads", "simcore"}

    def test_second_run_hits_cache_with_identical_metrics(
            self, capsys, bench_env):
        assert main(["bench", "--quick", "--output", str(bench_env)]) == 0
        artifact = next(bench_env.glob("BENCH_*.json"))
        cold = self._metrics(artifact)
        assert main(["bench", "--quick", "--output", str(bench_env)]) == 0
        warm_payload = json.loads(artifact.read_text())
        assert warm_payload["cache"]["hit_rate"] > 0
        assert self._metrics(artifact) == cold

    def test_baseline_pass_and_fail(self, capsys, bench_env):
        assert main(["bench", "--quick", "--output", str(bench_env)]) == 0
        artifact = next(bench_env.glob("BENCH_*.json"))
        baseline = bench_env / "baseline.json"
        baseline.write_text(artifact.read_text())
        assert main(["bench", "--quick", "--output", str(bench_env),
                     "--baseline", str(baseline)]) == 0

        # Shrink every baseline metric: now everything looks regressed.
        # (simcore publishes no median_iter_s — the gate ignores it.)
        payload = json.loads(baseline.read_text())
        for suite, body in payload["suites"].items():
            if suite == "simcore":
                continue
            for metrics in body["metrics"].values():
                metrics["median_iter_s"] *= 0.5
        baseline.write_text(json.dumps(payload))
        assert main(["bench", "--quick", "--output", str(bench_env),
                     "--baseline", str(baseline)]) == 3
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, capsys, bench_env):
        assert main(["bench", "--quick", "--output", str(bench_env),
                     "--baseline", str(bench_env / "nope.json")]) == 2
