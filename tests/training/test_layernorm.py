"""Tests for the LayerNorm module."""

import numpy as np
import pytest

from repro.training.autograd import Tensor
from repro.training.modules import LayerNorm, Linear, Sequential
from tests.training.test_autograd import numeric_grad


class TestLayerNormForward:
    def test_output_normalised(self):
        layer = LayerNorm(8)
        x = np.random.default_rng(0).normal(loc=3.0, scale=5.0, size=(4, 8))
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_parameters_applied(self):
        layer = LayerNorm(4)
        layer.weight.data = np.full(4, 2.0)
        layer.bias.data = np.full(4, 1.0)
        x = np.random.default_rng(1).normal(size=(3, 4))
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-9)

    def test_constant_input_maps_to_bias(self):
        layer = LayerNorm(4, eps=1e-5)
        out = layer(Tensor(np.full((2, 4), 7.0))).data
        np.testing.assert_allclose(out, 0.0, atol=1e-6)

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestLayerNormBackward:
    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        x_val = rng.normal(size=(3, 5))
        weight = rng.normal(size=5)
        bias = rng.normal(size=5)
        layer = LayerNorm(5)
        layer.weight.data = weight
        layer.bias.data = bias

        x = Tensor(x_val, requires_grad=True)
        layer(x).sum().backward()

        def reference(value):
            mean = value.mean(axis=-1, keepdims=True)
            centred = value - mean
            variance = (centred**2).mean(axis=-1, keepdims=True)
            return (centred / np.sqrt(variance + 1e-5) * weight + bias).sum()

        numeric = numeric_grad(reference, x_val.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_parameter_gradients(self):
        rng = np.random.default_rng(3)
        layer = LayerNorm(6)
        x = Tensor(rng.normal(size=(4, 6)))
        layer(x).sum().backward()
        assert layer.weight.grad.shape == (6,)
        assert layer.bias.grad.shape == (6,)
        np.testing.assert_allclose(layer.bias.grad, 4.0)  # d(sum)/d(bias)

    def test_composes_in_network_and_trains(self):
        from repro.training.data import SyntheticRegression
        from repro.training.modules import mse_loss
        from repro.training.optim import SGD

        rng = np.random.default_rng(4)
        model = Sequential(
            Linear(8, 16, rng=rng), LayerNorm(16), Linear(16, 2, rng=rng)
        )
        data = SyntheticRegression(num_samples=64, in_features=8,
                                   out_features=2, seed=5)
        features, targets = data.arrays()
        optimizer = SGD(model.parameters(), lr=0.05)
        losses = []
        for _ in range(40):
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(features)), Tensor(targets))
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]

    def test_registered_as_two_parameters(self):
        layer = LayerNorm(4)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]
