"""Tests for the SGD optimiser and synthetic datasets."""

import numpy as np
import pytest

from repro.training.data import SyntheticClassification, SyntheticRegression
from repro.training.modules import Parameter
from repro.training.optim import SGD


class TestSGD:
    def _param(self, value=1.0):
        param = Parameter(np.array([value]))
        param.grad = np.array([0.5])
        return param

    def test_plain_step(self):
        param = self._param()
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0 - 0.05])

    def test_none_grad_skipped(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_momentum_accumulates(self):
        param = self._param()
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        optimizer.step()         # v = 0.5 -> w = 1 - 0.05
        param.grad = np.array([0.5])
        optimizer.step()         # v = 0.95 -> w -= 0.095
        np.testing.assert_allclose(param.data, [1.0 - 0.05 - 0.095])

    def test_weight_decay(self):
        param = self._param(value=2.0)
        SGD([param], lr=0.1, weight_decay=0.1).step()
        # grad = 0.5 + 0.1 * 2.0 = 0.7
        np.testing.assert_allclose(param.data, [2.0 - 0.07])

    def test_matches_torch_semantics_sequence(self):
        """Velocity formula v = mu v + g, w -= lr v, over several steps."""
        param = Parameter(np.array([0.0]))
        optimizer = SGD([param], lr=1.0, momentum=0.5)
        expected_velocity, expected_w = 0.0, 0.0
        for grad in (1.0, 1.0, -2.0, 0.0):
            param.grad = np.array([grad])
            optimizer.step()
            expected_velocity = 0.5 * expected_velocity + grad
            expected_w -= expected_velocity
            np.testing.assert_allclose(param.data, [expected_w])

    def test_zero_grad(self):
        param = self._param()
        optimizer = SGD([param], lr=0.1)
        optimizer.zero_grad()
        assert param.grad is None

    def test_step_parameter_single(self):
        a, b = self._param(), self._param()
        optimizer = SGD([a, b], lr=0.1)
        optimizer.step_parameter(a)
        np.testing.assert_allclose(a.data, [0.95])
        np.testing.assert_allclose(b.data, [1.0])

    def test_invalid_hyperparameters(self):
        param = self._param()
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, weight_decay=-1)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestSyntheticData:
    def test_regression_deterministic(self):
        a = SyntheticRegression(seed=5)
        b = SyntheticRegression(seed=5)
        np.testing.assert_array_equal(a.arrays()[0], b.arrays()[0])
        np.testing.assert_array_equal(a.arrays()[1], b.arrays()[1])

    def test_regression_ground_truth_recoverable(self):
        data = SyntheticRegression(num_samples=2000, noise=0.0, seed=0)
        features, targets = data.arrays()
        solution, *_ = np.linalg.lstsq(
            np.hstack([features, np.ones((len(features), 1))]), targets, rcond=None
        )
        np.testing.assert_allclose(solution[:-1], data.true_weight, atol=1e-8)
        np.testing.assert_allclose(solution[-1], data.true_bias, atol=1e-8)

    def test_shards_disjoint_and_cover(self):
        data = SyntheticRegression(num_samples=64, seed=0)
        features, _ = data.arrays()
        shards = [data.shard(rank, 4)[0] for rank in range(4)]
        stacked = np.vstack(shards)
        np.testing.assert_array_equal(stacked, features)

    def test_shard_rank_bounds(self):
        data = SyntheticRegression(num_samples=16)
        with pytest.raises(ValueError):
            data.shard(4, 4)

    def test_too_many_ranks(self):
        data = SyntheticRegression(num_samples=2)
        with pytest.raises(ValueError):
            data.shard(0, 4)

    def test_batches_shapes(self):
        data = SyntheticRegression(num_samples=64, in_features=8, seed=0)
        batches = list(data.batches(rank=1, world_size=4, batch_size=4))
        assert len(batches) == 4
        for features, targets in batches:
            assert features.shape == (4, 8)

    def test_classification_labels_in_range(self):
        data = SyntheticClassification(num_samples=100, num_classes=5, seed=0)
        _, labels = data.arrays()
        assert labels.min() >= 0 and labels.max() < 5

    def test_classification_blobs_separable(self):
        """Nearest-centroid should beat chance comfortably."""
        data = SyntheticClassification(
            num_samples=400, in_features=8, num_classes=4, spread=0.3, seed=1
        )
        features, labels = data.arrays()
        centroids = np.stack(
            [features[labels == c].mean(axis=0) for c in range(4)]
        )
        distances = ((features[:, None, :] - centroids[None]) ** 2).sum(-1)
        accuracy = (distances.argmin(axis=1) == labels).mean()
        assert accuracy > 0.95

    def test_classification_needs_two_classes(self):
        with pytest.raises(ValueError):
            SyntheticClassification(num_classes=1)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            SyntheticRegression(num_samples=0)
