"""Tests for in-process data-parallel S-SGD."""

import numpy as np
import pytest

from repro.training.data import SyntheticClassification, SyntheticRegression
from repro.training.modules import MLP
from repro.training.parallel import DataParallelTrainer, group_parameters_backward


def factory():
    return MLP((8, 16, 4), seed=11)


def _run(strategy, steps=4, world_size=4, **kwargs):
    data = SyntheticRegression(num_samples=256, in_features=8, out_features=4, seed=2)
    trainer = DataParallelTrainer(
        factory, world_size, lr=0.05, momentum=0.9, strategy=strategy, **kwargs
    )
    iterator = zip(*[data.batches(r, world_size, 8) for r in range(world_size)])
    losses = []
    for _, batches in zip(range(steps), iterator):
        losses.append(trainer.train_step(list(batches)))
    return trainer, losses


class TestGroupParametersBackward:
    def test_none_gives_per_tensor(self):
        params = factory().parameters()
        groups = group_parameters_backward(params, None)
        assert len(groups) == len(params)

    def test_backward_order(self):
        params = factory().parameters()
        groups = group_parameters_backward(params, None)
        flattened = [p for group in groups for p in group]
        assert flattened == list(reversed(params))

    def test_threshold_respected(self):
        params = factory().parameters()
        groups = group_parameters_backward(params, 600)
        for group in groups:
            total = sum(p.data.nbytes for p in group)
            assert total <= 600 or len(group) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            group_parameters_backward(factory().parameters(), 0)


class TestDataParallelTrainer:
    def test_replicas_stay_consistent(self):
        trainer, _ = _run("allreduce")
        assert trainer.parameters_consistent()

    def test_loss_decreases(self):
        _, losses = _run("decoupled", steps=8)
        assert losses[-1] < losses[0]

    def test_decoupled_matches_allreduce_bitwise(self):
        """DeAR's OP1+OP2 == fused all-reduce: identical trajectories."""
        fused, _ = _run("allreduce", buffer_bytes=2048)
        decoupled, _ = _run("decoupled", buffer_bytes=2048)
        for a, b in zip(fused.parameter_snapshot(), decoupled.parameter_snapshot()):
            np.testing.assert_array_equal(a, b)

    def test_per_tensor_matches_fused_closely(self):
        fused, _ = _run("allreduce", buffer_bytes=2048)
        per_tensor, _ = _run("per_tensor")
        for a, b in zip(fused.parameter_snapshot(), per_tensor.parameter_snapshot()):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_local_strategy_diverges(self):
        trainer, _ = _run("local")
        assert not trainer.parameters_consistent()

    def test_world_size_two_and_eight(self):
        for world_size in (2, 8):
            trainer, _ = _run("decoupled", world_size=world_size, steps=2)
            assert trainer.parameters_consistent()

    def test_tree_algorithm_consistent(self):
        trainer, _ = _run("decoupled", algorithm="tree", steps=2)
        assert trainer.parameters_consistent()

    def test_hierarchical_algorithm(self):
        trainer, _ = _run(
            "decoupled", algorithm="hierarchical", gpus_per_node=2, steps=2
        )
        assert trainer.parameters_consistent()

    def test_halving_doubling_algorithm(self):
        trainer, _ = _run("allreduce", algorithm="halving_doubling", steps=2)
        assert trainer.parameters_consistent()

    def test_classification_loss(self):
        data = SyntheticClassification(
            num_samples=256, in_features=8, num_classes=4, seed=3
        )
        trainer = DataParallelTrainer(
            factory, 4, lr=0.1, strategy="decoupled", loss="cross_entropy"
        )
        iterator = zip(*[data.batches(r, 4, 8) for r in range(4)])
        losses = [trainer.train_step(list(b)) for _, b in zip(range(8), iterator)]
        assert losses[-1] < losses[0]

    def test_gradient_averaging_equals_large_batch(self):
        """S-SGD over P shards == single worker on the concatenated batch
        (Eq. 2): the canonical data-parallel equivalence."""
        from repro.training.autograd import Tensor
        from repro.training.modules import mse_loss
        from repro.training.optim import SGD

        data = SyntheticRegression(num_samples=64, in_features=8, out_features=4, seed=4)
        world = 4
        trainer = DataParallelTrainer(factory, world, lr=0.05, strategy="allreduce")
        batches = [next(data.batches(r, world, 16)) for r in range(world)]
        trainer.train_step(batches)

        reference = factory()
        optimizer = SGD(reference.parameters(), lr=0.05)
        features = np.vstack([b[0] for b in batches])
        targets = np.vstack([b[1] for b in batches])
        loss = mse_loss(reference(Tensor(features)), Tensor(targets))
        loss.backward()
        optimizer.step()

        for param, snapshot in zip(
            reference.parameters(), trainer.parameter_snapshot()
        ):
            np.testing.assert_allclose(param.data, snapshot, atol=1e-12)

    def test_wrong_batch_count_rejected(self):
        trainer = DataParallelTrainer(factory, 4)
        with pytest.raises(ValueError):
            trainer.train_step([(np.zeros((2, 8)), np.zeros((2, 4)))])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(factory, 2, strategy="gossip")

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(factory, 2, loss="hinge")

    def test_nondeterministic_factory_rejected(self):
        counter = {"n": 0}

        def bad_factory():
            counter["n"] += 1
            return MLP((8, 16, 4), seed=counter["n"])

        with pytest.raises(ValueError):
            DataParallelTrainer(bad_factory, 2)

    def test_evaluate_loss(self):
        trainer, _ = _run("allreduce", steps=2)
        data = SyntheticRegression(num_samples=32, in_features=8, out_features=4, seed=9)
        features, targets = data.arrays()
        assert trainer.evaluate_loss(features, targets) > 0
