"""Unit tests for the reverse-mode autograd engine.

Gradients are verified against central finite differences, the oracle
that does not share code with the implementation under test.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.training.autograd import Tensor, no_grad


def numeric_grad(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at value."""
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn(value)
        flat[index] = original - eps
        lower = fn(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


class TestElementwiseOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_scalar_broadcast(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])

    def test_broadcast_bias_gradient_sums_over_batch(self):
        bias = Tensor([0.5, -0.5], requires_grad=True)
        x = Tensor(np.ones((4, 2)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, [4.0, 4.0])

    def test_reuse_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])


class TestMatmulAndShapes:
    def test_matmul_backward_matches_numeric(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))

        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()

        num_a = numeric_grad(lambda v: (v @ b_val).sum(), a_val.copy())
        num_b = numeric_grad(lambda v: (a_val @ v).sum(), b_val.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_reshape_backward(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(a.grad, np.arange(6.0).reshape(3, 2).T)

    def test_mean_backward(self):
        a = Tensor(np.ones(4), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_sum_axis_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op,reference",
        [
            ("relu", lambda v: np.maximum(v, 0.0)),
            ("tanh", np.tanh),
            ("exp", np.exp),
        ],
    )
    def test_matches_numeric(self, op, reference):
        rng = np.random.default_rng(1)
        value = rng.normal(size=5) + 0.1  # keep away from the relu kink
        tensor = Tensor(value, requires_grad=True)
        getattr(tensor, op)().sum().backward()
        numeric = numeric_grad(lambda v: reference(v).sum(), value.copy())
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-5)

    def test_log_backward(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        a.log().sum().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.25])

    def test_log_softmax_rows_sum_to_one_prob(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        out = logits.log_softmax(axis=-1)
        probs = np.exp(out.data)
        np.testing.assert_allclose(probs.sum(axis=-1), [1.0])

    def test_log_softmax_backward_matches_numeric(self):
        rng = np.random.default_rng(2)
        value = rng.normal(size=(2, 4))
        weights = rng.normal(size=(2, 4))
        tensor = Tensor(value, requires_grad=True)
        (tensor.log_softmax(axis=-1) * Tensor(weights)).sum().backward()

        def fn(v):
            shifted = v - v.max(axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
            return (log_probs * weights).sum()

        numeric = numeric_grad(fn, value.copy())
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-5)


class TestEngine:
    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_deep_chain(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(50):
            out = out * 1.1
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.1**50], rtol=1e-10)

    def test_diamond_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        c = a * 5.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [8.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert out._parents == ()

    def test_grad_hook_fires_once_per_leaf(self):
        fired = []
        a = Tensor([1.0], requires_grad=True)
        a.grad_hooks.append(lambda t: fired.append("a"))
        b = Tensor([2.0], requires_grad=True)
        b.grad_hooks.append(lambda t: fired.append("b"))
        (a * b).sum().backward()
        assert sorted(fired) == ["a", "b"]

    def test_grad_hooks_fire_in_backward_order(self):
        """Hooks fire last-used-first: the WFBP readiness order."""
        order = []
        first = Tensor([1.0], requires_grad=True, name="first")
        last = Tensor([1.0], requires_grad=True, name="last")
        first.grad_hooks.append(lambda t: order.append("first"))
        last.grad_hooks.append(lambda t: order.append("last"))
        # first used early in the chain, last used at the end
        out = ((first * 2.0) * 3.0 + last).sum()
        out.backward()
        assert order == ["last", "first"]

    def test_intermediate_grads_freed(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = b * 3.0
        c.sum().backward()
        assert b.grad is None  # freed after use
        assert a.grad is not None

    def test_matches_numeric_on_composite_function(self):
        rng = np.random.default_rng(3)
        value = rng.normal(size=(3, 3))
        tensor = Tensor(value, requires_grad=True)
        out = ((tensor @ tensor.T).tanh() * 0.5).sum()
        out.backward()
        numeric = numeric_grad(
            lambda v: (np.tanh(v @ v.T) * 0.5).sum(), value.copy()
        )
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-5)

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 1000))
    def test_mlp_gradient_matches_numeric(self, seed):
        rng = np.random.default_rng(seed)
        w1_val = rng.normal(size=(3, 4))
        w2_val = rng.normal(size=(4, 2))
        x_val = rng.normal(size=(5, 3))

        w1 = Tensor(w1_val, requires_grad=True)
        w2 = Tensor(w2_val, requires_grad=True)
        ((Tensor(x_val) @ w1).relu() @ w2).sum().backward()

        numeric = numeric_grad(
            lambda v: (np.maximum(x_val @ v, 0) @ w2_val).sum(), w1_val.copy()
        )
        np.testing.assert_allclose(w1.grad, numeric, atol=1e-4)
