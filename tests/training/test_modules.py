"""Tests for modules, losses, and the hook surfaces."""

import numpy as np
import pytest

from repro.training.autograd import Tensor
from repro.training.modules import (
    MLP,
    Linear,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    cross_entropy,
    mse_loss,
)


class TestModuleRegistry:
    def test_named_parameters_in_forward_order(self):
        mlp = MLP((4, 8, 2), seed=0)
        names = [name for name, _ in mlp.named_parameters()]
        assert names == [
            "stage0.weight", "stage0.bias", "stage2.weight", "stage2.bias",
        ]

    def test_parameters_are_leaves(self):
        mlp = MLP((4, 8, 2), seed=0)
        for param in mlp.parameters():
            assert isinstance(param, Parameter)
            assert param.requires_grad

    def test_leaf_modules_in_execution_order(self):
        mlp = MLP((4, 8, 2), seed=0)
        leaves = mlp.leaf_modules()
        kinds = [type(m).__name__ for m in leaves]
        assert kinds == ["Linear", "ReLU", "Linear"]

    def test_zero_grad(self):
        mlp = MLP((4, 8, 2), seed=0)
        out = mlp(Tensor(np.ones((3, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestLinear:
    def test_forward_shape(self):
        linear = Linear(4, 7, rng=np.random.default_rng(0))
        out = linear(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)

    def test_forward_computes_affine(self):
        linear = Linear(2, 2, rng=np.random.default_rng(0))
        linear.weight.data = np.eye(2)
        linear.bias.data = np.array([1.0, -1.0])
        out = linear(Tensor(np.array([[2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[3.0, 2.0]])

    def test_gradients_flow_to_both_tensors(self):
        linear = Linear(3, 2, rng=np.random.default_rng(0))
        linear(Tensor(np.ones((4, 3)))).sum().backward()
        assert linear.weight.grad.shape == (3, 2)
        assert linear.bias.grad.shape == (2,)
        np.testing.assert_allclose(linear.bias.grad, [4.0, 4.0])


class TestHooks:
    def test_pre_forward_hooks_fire_in_execution_order(self):
        mlp = MLP((4, 8, 2), seed=0)
        fired = []
        for index, module in enumerate(mlp.leaf_modules()):
            module.pre_forward_hooks.append(
                lambda m, i=index: fired.append(i)
            )
        mlp(Tensor(np.ones((1, 4))))
        assert fired == [0, 1, 2]

    def test_grad_hooks_fire_in_backward_order(self):
        """Gradient hooks must fire last layer first (BackPipe order)."""
        mlp = MLP((4, 8, 8, 2), seed=0)
        fired = []
        for name, param in mlp.named_parameters():
            param.grad_hooks.append(lambda p, n=name: fired.append(n))
        mse_loss(mlp(Tensor(np.ones((2, 4)))), Tensor(np.zeros((2, 2)))).backward()
        # Layer order strictly decreasing stage index:
        stages = [int(name.split(".")[0][5:]) for name in fired]
        assert stages == sorted(stages, reverse=True)
        assert len(fired) == 6

    def test_hooks_receive_parameter_with_grad(self):
        mlp = MLP((2, 2), seed=0)
        seen = []
        for _, param in mlp.named_parameters():
            param.grad_hooks.append(lambda p: seen.append(p.grad is not None))
        mlp(Tensor(np.ones((1, 2)))).sum().backward()
        assert seen and all(seen)


class TestActivationsAndSequential:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.0])

    def test_sequential_chains(self):
        seq = Sequential(ReLU(), Tanh())
        out = seq(Tensor(np.array([-5.0, 0.5])))
        np.testing.assert_allclose(out.data, np.tanh([0.0, 0.5]))

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP((4,))

    def test_mlp_deterministic_by_seed(self):
        a = MLP((4, 8, 2), seed=3)
        b = MLP((4, 8, 2), seed=3)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_mlp_different_seeds_differ(self):
        a = MLP((4, 8, 2), seed=1)
        b = MLP((4, 8, 2), seed=2)
        assert not np.array_equal(a.parameters()[0].data, b.parameters()[0].data)


class TestLosses:
    def test_mse_zero_for_exact_prediction(self):
        pred = Tensor(np.ones((2, 3)))
        assert mse_loss(pred, Tensor(np.ones((2, 3)))).item() == pytest.approx(0.0)

    def test_mse_value(self):
        pred = Tensor(np.array([[2.0]]))
        target = Tensor(np.array([[0.0]]))
        assert mse_loss(pred, target).item() == pytest.approx(4.0)

    def test_mse_gradient(self):
        pred = Tensor(np.array([[3.0]]), requires_grad=True)
        mse_loss(pred, Tensor(np.array([[1.0]]))).backward()
        np.testing.assert_allclose(pred.grad, [[4.0]])

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_confident_correct(self):
        logits = np.full((1, 3), -10.0)
        logits[0, 1] = 10.0
        loss = cross_entropy(Tensor(logits), np.array([1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
        cross_entropy(logits, np.array([0])).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 0] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_cross_entropy_batch_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_training_reduces_loss(self):
        """A short regression run must actually learn."""
        from repro.training.data import SyntheticRegression
        from repro.training.optim import SGD

        data = SyntheticRegression(num_samples=128, in_features=8, out_features=2, seed=0)
        features, targets = data.arrays()
        mlp = MLP((8, 16, 2), seed=0)
        optimizer = SGD(mlp.parameters(), lr=0.05)
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = mse_loss(mlp(Tensor(features)), Tensor(targets))
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.2 * first_loss
