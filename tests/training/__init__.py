"""Test package."""
