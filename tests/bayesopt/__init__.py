"""Test package."""
