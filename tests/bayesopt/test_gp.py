"""Unit and property tests for Gaussian-process regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesopt.gp import GaussianProcess, RBFKernel


class TestRBFKernel:
    def test_self_similarity_is_signal_variance(self):
        kernel = RBFKernel(length_scale=0.3, signal_variance=2.0)
        x = np.array([[0.5]])
        assert kernel(x, x)[0, 0] == pytest.approx(2.0)

    def test_decays_with_distance(self):
        kernel = RBFKernel(length_scale=0.2)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[0.9]]))[0, 0]
        assert near > far

    def test_symmetric(self):
        kernel = RBFKernel()
        a = np.random.default_rng(0).uniform(size=(5, 1))
        gram = kernel(a, a)
        np.testing.assert_allclose(gram, gram.T)

    def test_positive_semidefinite(self):
        kernel = RBFKernel()
        a = np.random.default_rng(1).uniform(size=(8, 1))
        gram = kernel(a, a)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-10

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0)
        with pytest.raises(ValueError):
            RBFKernel(signal_variance=-1)


class TestGaussianProcess:
    def test_interpolates_observations_with_low_noise(self):
        gp = GaussianProcess(kernel=RBFKernel(length_scale=0.3), noise=1e-8)
        x = np.array([[0.1], [0.5], [0.9]])
        y = np.array([1.0, 3.0, 2.0])
        gp.fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        gp = GaussianProcess(kernel=RBFKernel(length_scale=0.1), noise=1e-6)
        gp.fit(np.array([[0.5]]), np.array([1.0]))
        _, std_near = gp.predict(np.array([[0.5]]))
        _, std_far = gp.predict(np.array([[0.0]]))
        assert std_far[0] > std_near[0]

    def test_mean_reverts_to_prior_far_away(self):
        gp = GaussianProcess(kernel=RBFKernel(length_scale=0.05), noise=1e-6)
        gp.fit(np.array([[0.5]]), np.array([10.0]))
        mean, _ = gp.predict(np.array([[5.0]]))
        # Standardised prior mean is the observation mean itself here.
        assert mean[0] == pytest.approx(10.0)

    def test_kernel_selection_prefers_fitting_scale(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(20, 1))
        y = np.sin(6 * x[:, 0])
        gp = GaussianProcess(noise=1e-4)
        gp.fit(x, y)
        mean, _ = gp.predict(x)
        assert np.corrcoef(mean, y)[0, 1] > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.array([[0.0]]))

    def test_zero_observations_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.empty((0, 1)), [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.array([[0.0], [1.0]]), [1.0])

    def test_constant_targets_handled(self):
        gp = GaussianProcess()
        gp.fit(np.array([[0.0], [1.0]]), [5.0, 5.0])
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(5.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(noise=-1.0)

    @settings(deadline=None, max_examples=20)
    @given(
        ys=st.lists(st.floats(-10, 10), min_size=2, max_size=10),
        seed=st.integers(0, 100),
    )
    def test_predictions_finite(self, ys, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(len(ys), 1))
        gp = GaussianProcess()
        gp.fit(x, ys)
        mean, std = gp.predict(rng.uniform(size=(5, 1)))
        assert np.all(np.isfinite(mean))
        assert np.all(np.isfinite(std))
        assert np.all(std >= 0)
