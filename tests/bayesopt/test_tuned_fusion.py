"""BO fusion co-optimised with autotuned collectives (the acceptance bar).

ISSUE acceptance: under ``algorithm="auto"`` the BO fusion search must
find a plan whose iteration time is <= the ring-only plan's, on BOTH
the 10GbE and the 100Gb IB testbeds at 64 ranks.
"""

import pytest

from repro.bayesopt.search import compare_fusion_strategies, tuned_fusion_search
from repro.models import get_model
from repro.network.autotuner import build_selection_table, clear_tables
from repro.network.presets import cluster_100gbib, cluster_10gbe

BO_TRIALS = 6  # enough for the joint search to beat/tie ring; keeps CI fast


@pytest.fixture(autouse=True)
def _clean_tables():
    clear_tables()
    yield
    clear_tables()


@pytest.mark.parametrize("cluster_fn", [cluster_10gbe, cluster_100gbib],
                         ids=["10gbe", "100gbib"])
def test_tuned_bo_never_loses_to_ring(cluster_fn):
    cluster = cluster_fn()
    assert cluster.world_size == 64
    out = compare_fusion_strategies(
        get_model("resnet50"), cluster, bo_trials=BO_TRIALS
    )
    assert out["tuned_iteration_time"] <= out["ring_iteration_time"]
    assert out["speedup"] >= 1.0


def test_tuned_search_records_algorithm():
    result = tuned_fusion_search(
        get_model("resnet50"), cluster_100gbib(), bo_trials=BO_TRIALS
    )
    assert result.extras["algorithm"] == "auto"
    assert result.iteration_time > 0


def test_explicit_table_matches_ensured_table():
    cluster = cluster_100gbib()
    table = build_selection_table(cluster)
    explicit = tuned_fusion_search(
        get_model("resnet50"), cluster, tuned_table=table, bo_trials=BO_TRIALS
    )
    clear_tables()
    ensured = tuned_fusion_search(
        get_model("resnet50"), cluster, bo_trials=BO_TRIALS
    )
    assert explicit.iteration_time == ensured.iteration_time


def test_ring_only_search_unaffected_by_tables():
    """algorithm="ring" must ignore any registered table entirely."""
    cluster = cluster_100gbib()
    before = tuned_fusion_search(
        get_model("resnet50"), cluster, algorithm="ring", bo_trials=BO_TRIALS
    )
    build_selection_table(cluster)
    after = tuned_fusion_search(
        get_model("resnet50"), cluster, algorithm="ring", bo_trials=BO_TRIALS
    )
    assert before.iteration_time == after.iteration_time
