"""Tests for acquisition functions, the BO loop, and search baselines."""

import numpy as np
import pytest

from repro.bayesopt.acquisition import expected_improvement, upper_confidence_bound
from repro.bayesopt.optimizer import BayesianOptimizer
from repro.bayesopt.search import GridSearch, RandomSearch, trials_to_reach


class TestExpectedImprovement:
    def test_zero_when_mean_far_below_best(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-9]), best=10.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_mean_above_best(self):
        ei = expected_improvement(np.array([11.0]), np.array([0.1]), best=10.0, xi=0.0)
        assert ei[0] > 0.9

    def test_uncertainty_raises_ei(self):
        certain = expected_improvement(np.array([10.0]), np.array([0.01]), 10.0, xi=0.0)
        uncertain = expected_improvement(np.array([10.0]), np.array([1.0]), 10.0, xi=0.0)
        assert uncertain[0] > certain[0]

    def test_xi_penalises_marginal_improvements(self):
        eager = expected_improvement(np.array([10.5]), np.array([0.2]), 10.0, xi=0.0)
        cautious = expected_improvement(np.array([10.5]), np.array([0.2]), 10.0, xi=1.0)
        assert cautious[0] < eager[0]

    def test_zero_std_exact(self):
        ei = expected_improvement(
            np.array([12.0, 8.0]), np.array([0.0, 0.0]), best=10.0, xi=0.0
        )
        np.testing.assert_allclose(ei, [2.0, 0.0])

    def test_negative_xi_rejected(self):
        with pytest.raises(ValueError):
            expected_improvement(np.array([1.0]), np.array([1.0]), 0.0, xi=-0.1)

    def test_ucb(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([2.0]), kappa=2.0)
        assert ucb[0] == pytest.approx(5.0)


class TestBayesianOptimizer:
    def test_first_suggestion_is_paper_default(self):
        bo = BayesianOptimizer(1e6, 100e6, seed=0)
        assert bo.suggest() == pytest.approx(25e6)

    def test_suggestions_within_bounds(self):
        bo = BayesianOptimizer(1e6, 100e6, seed=1)
        for _ in range(10):
            x = bo.suggest()
            assert 1e6 <= x <= 100e6
            bo.observe(x, -(np.log(x) - np.log(10e6)) ** 2)

    def test_finds_smooth_optimum(self):
        """BO should localise a log-quadratic peak within ~12 trials."""
        optimum = 20e6
        bo = BayesianOptimizer(1e6, 100e6, xi=0.1, seed=0)
        for _ in range(12):
            x = bo.suggest()
            bo.observe(x, -(np.log(x / optimum)) ** 2)
        best_x, _ = bo.best
        assert abs(np.log(best_x / optimum)) < np.log(2.0)  # within 2x

    def test_beats_few_shot_random_on_average(self):
        def objective(x):
            return -(np.log(x / 15e6)) ** 2

        def best_after(tuner, trials):
            for _ in range(trials):
                x = tuner.suggest()
                tuner.observe(x, objective(x))
            return tuner.best[1]

        bo_scores = [
            best_after(BayesianOptimizer(1e6, 100e6, seed=s), 8) for s in range(5)
        ]
        random_scores = [
            best_after(RandomSearch(1e6, 100e6, seed=s), 8) for s in range(5)
        ]
        assert np.mean(bo_scores) >= np.mean(random_scores)

    def test_observe_out_of_domain_rejected(self):
        bo = BayesianOptimizer(1e6, 100e6)
        with pytest.raises(ValueError):
            bo.observe(1e9, 1.0)

    def test_observe_nan_rejected(self):
        bo = BayesianOptimizer(1e6, 100e6)
        with pytest.raises(ValueError):
            bo.observe(10e6, float("nan"))

    def test_best_requires_observations(self):
        with pytest.raises(RuntimeError):
            BayesianOptimizer(1e6, 100e6).best

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(10.0, 1.0)

    def test_unknown_acquisition(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(1.0, 2.0, acquisition="vibes")

    def test_posterior_shapes(self):
        bo = BayesianOptimizer(1e6, 100e6, seed=0)
        for x, y in [(2e6, 1.0), (20e6, 3.0), (80e6, 2.0)]:
            bo.observe(x, y)
        xs = np.logspace(6, 8, 10)
        mean, std = bo.posterior(xs)
        assert mean.shape == (10,) and std.shape == (10,)

    def test_deterministic_given_seed(self):
        def run(seed):
            bo = BayesianOptimizer(1e6, 100e6, seed=seed)
            xs = []
            for _ in range(6):
                x = bo.suggest()
                xs.append(x)
                bo.observe(x, -(np.log(x / 30e6)) ** 2)
            return xs

        assert run(7) == run(7)


class TestSearchBaselines:
    def test_random_search_within_bounds(self):
        rs = RandomSearch(1e6, 100e6, seed=0)
        for _ in range(50):
            assert 1e6 <= rs.suggest() <= 100e6

    def test_random_search_log_spread(self):
        rs = RandomSearch(1e6, 100e6, seed=0)
        xs = [rs.suggest() for _ in range(200)]
        below_10mb = sum(1 for x in xs if x < 10e6)
        # log-uniform: ~half the samples in each decade
        assert 60 < below_10mb < 140

    def test_grid_search_sweeps_in_order(self):
        gs = GridSearch(1e6, 100e6, points=5)
        xs = [gs.suggest() for _ in range(5)]
        assert xs == sorted(xs)
        assert xs[0] == pytest.approx(1e6)
        assert xs[-1] == pytest.approx(100e6)

    def test_grid_search_cycles(self):
        gs = GridSearch(1e6, 100e6, points=3)
        xs = [gs.suggest() for _ in range(6)]
        assert xs[:3] == xs[3:]

    def test_grid_needs_two_points(self):
        with pytest.raises(ValueError):
            GridSearch(1.0, 2.0, points=1)

    def test_trials_to_reach_immediate(self):
        gs = GridSearch(1.0, 100.0, points=4)
        assert trials_to_reach(gs, lambda x: 1.0, target=0.5) == 1

    def test_trials_to_reach_budget_exhausted(self):
        gs = GridSearch(1.0, 100.0, points=4)
        assert trials_to_reach(gs, lambda x: 0.0, target=1.0, max_trials=7) == 7

    def test_trials_to_reach_true_value_criterion(self):
        rs = RandomSearch(1.0, 100.0, seed=0)
        # Noisy observations, but the true value never reaches the target:
        rng = np.random.default_rng(0)
        result = trials_to_reach(
            rs,
            lambda x: 0.5 + rng.normal(0, 0.5),
            target=0.9,
            max_trials=10,
            true_value=lambda x: 0.5,
        )
        assert result == 10


class TestWarmCandidateCache:
    def test_duplicates_simulated_once_in_caller_order(self, monkeypatch,
                                                       tiny_model,
                                                       ethernet_cluster):
        from repro.bayesopt.search import warm_candidate_cache

        import repro.runner as runner

        seen_batches = []

        def fake_run_many(specs, jobs=None):
            seen_batches.append(specs)
            return [dict(spec.options)["buffer_bytes"] for spec in specs]

        monkeypatch.setattr(runner, "run_many", fake_run_many)
        sizes = [4e6, 8e6, 4e6, 16e6, 8e6, 4e6]
        results = warm_candidate_cache(tiny_model, ethernet_cluster, sizes)
        # One batch, one spec per *unique* size, first-seen order.
        assert len(seen_batches) == 1
        assert [dict(s.options)["buffer_bytes"] for s in seen_batches[0]] == [
            4e6, 8e6, 16e6,
        ]
        # Results come back in the caller's original (duplicated) order.
        assert results == sizes
