"""Run-time re-fusion: the dynamic half of the §IV-B BO tuning loop."""

import numpy as np
import pytest

import repro.core as dear
from repro.core.bo_tuner import BufferSizeTuner
from repro.training.autograd import Tensor
from repro.training.data import SyntheticRegression
from repro.training.modules import MLP, mse_loss
from repro.training.optim import SGD
from repro.training.parallel import DataParallelTrainer


def factory():
    return MLP((8, 16, 4), seed=33)


def _setup(world=4, buffer_bytes=2048):
    models = [factory() for _ in range(world)]
    runtime = dear.init(world, buffer_bytes=buffer_bytes)
    optims = [
        dear.DistOptim(SGD(m.parameters(), lr=0.05, momentum=0.9), m, runtime)
        for m in models
    ]
    return models, runtime, optims


def _one_step(models, optims, batches):
    for rank, (features, targets) in enumerate(batches):
        models[rank].zero_grad()
        mse_loss(models[rank](Tensor(features)), Tensor(targets)).backward()
        optims[rank].step()


class TestRefusion:
    def test_trajectory_unchanged_by_mid_run_refusion(self):
        """Fusion regrouping changes communication granularity, never
        semantics: a run that re-fuses every few steps must match the
        fixed-fusion reference to float tolerance (ring chunk
        boundaries move with the grouping, so summation order — and
        hence the last ulp — legitimately differs)."""
        world, steps = 4, 6
        data = SyntheticRegression(num_samples=256, in_features=8,
                                   out_features=4, seed=11)

        reference = DataParallelTrainer(
            factory, world, lr=0.05, momentum=0.9,
            strategy="allreduce", buffer_bytes=2048,
        )
        iterator = zip(*[data.batches(r, world, 8) for r in range(world)])
        for _, batches in zip(range(steps), iterator):
            reference.train_step(list(batches))

        models, runtime, optims = _setup(buffer_bytes=256)
        schedule = {2: 4096, 4: None}  # None = per-tensor groups
        iterator = zip(*[data.batches(r, world, 8) for r in range(world)])
        for step, batches in zip(range(steps), iterator):
            if step in schedule:
                for optim in optims:
                    optim.synchronize()
                runtime.refuse(schedule[step])
            _one_step(models, optims, list(batches))
        for optim in optims:
            optim.synchronize()

        for param, expected in zip(
            models[0].parameters(), reference.parameter_snapshot()
        ):
            np.testing.assert_allclose(param.data, expected, rtol=1e-12, atol=1e-14)

    def test_group_count_changes(self):
        _, runtime, optims = _setup(buffer_bytes=None)
        per_tensor = runtime.num_groups
        for optim in optims:
            optim.synchronize()
        runtime.refuse(1e9)
        assert runtime.num_groups == 1
        assert per_tensor > 1

    def test_refusion_with_pending_state_rejected(self):
        world = 2
        data = SyntheticRegression(num_samples=64, in_features=8,
                                   out_features=4, seed=12)
        models, runtime, optims = _setup(world=world)
        batches = [next(data.batches(r, world, 8)) for r in range(world)]
        _one_step(models, optims, batches)
        # Updates are still pending (no forward/synchronize yet).
        with pytest.raises(RuntimeError, match="pending"):
            runtime.refuse(4096)

    def test_refusion_before_registration_rejected(self):
        runtime = dear.init(2, buffer_bytes=1024)
        with pytest.raises(RuntimeError, match="registered"):
            runtime.refuse(2048)

    def test_bo_tuner_drives_refusion(self):
        """End-to-end dynamic loop: measured throughput feeds the BO
        tuner, whose suggestions re-fuse the runtime, and training
        stays correct throughout."""
        world, steps = 2, 12
        data = SyntheticRegression(num_samples=world * 8 * steps,
                                   in_features=8, out_features=4, seed=13)
        models, runtime, optims = _setup(world=world, buffer_bytes=25e6)
        tuner = BufferSizeTuner(
            low=256, high=65536, initial=25e6, steps_per_trial=3,
            max_trials=3, seed=0,
        )
        # initial=25e6 (the paper's default) lies outside this tiny
        # domain; the tuner clamps it to the upper bound.
        assert tuner.buffer_bytes == 65536
        virtual_clock = 0.0
        iterator = zip(*[data.batches(r, world, 8) for r in range(world)])
        refusions = 0
        for _, batches in zip(range(steps), iterator):
            _one_step(models, optims, list(batches))
            virtual_clock += 0.01 + 1e-9 * runtime.num_groups
            suggestion = tuner.record_step(samples=world * 8, elapsed=0.01)
            if suggestion is not None:
                for optim in optims:
                    optim.synchronize()
                runtime.refuse(suggestion)
                refusions += 1
        for optim in optims:
            optim.synchronize()
        assert refusions >= 2
        # Replicas still consistent after all the regrouping.
        for m in models[1:]:
            for a, b in zip(models[0].parameters(), m.parameters()):
                np.testing.assert_array_equal(a.data, b.data)
