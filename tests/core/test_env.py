"""Validated DEAR_* environment parsing (repro.core.env)."""

from __future__ import annotations

import warnings

import pytest

from repro.core.env import env_flag, env_float, env_int, env_str

VAR = "DEAR_TEST_KNOB"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(VAR, raising=False)


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", " on ", "yes", "Y"])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR, default=False) is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no", " n "])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR, default=True) is False

    def test_unset_and_empty_return_default(self, monkeypatch):
        assert env_flag(VAR, default=True) is True
        assert env_flag(VAR, default=False) is False
        monkeypatch.setenv(VAR, "   ")
        assert env_flag(VAR, default=True) is True

    def test_typo_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(VAR, "ture")
        with pytest.warns(RuntimeWarning, match=VAR):
            assert env_flag(VAR, default=True) is True
        monkeypatch.setenv(VAR, "enabledd")
        with pytest.warns(RuntimeWarning):
            assert env_flag(VAR, default=False) is False

    def test_valid_values_do_not_warn(self, monkeypatch):
        monkeypatch.setenv(VAR, "true")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_flag(VAR) is True


class TestEnvInt:
    def test_valid_integer(self, monkeypatch):
        monkeypatch.setenv(VAR, "8")
        assert env_int(VAR) == 8

    def test_unset_returns_default(self):
        assert env_int(VAR) is None
        assert env_int(VAR, default=3) == 3

    def test_non_integer_warns(self, monkeypatch):
        monkeypatch.setenv(VAR, "lots")
        with pytest.warns(RuntimeWarning, match=VAR):
            assert env_int(VAR, default=2) == 2

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.warns(RuntimeWarning):
            assert env_int(VAR, default=1, minimum=1) == 1
        monkeypatch.setenv(VAR, "4")
        assert env_int(VAR, minimum=1) == 4


class TestEnvStr:
    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(VAR, "  /tmp/cache  ")
        assert env_str(VAR) == "/tmp/cache"

    def test_unset_empty_and_blank_return_default(self, monkeypatch):
        assert env_str(VAR) is None
        assert env_str(VAR, default=".dear-cache") == ".dear-cache"
        monkeypatch.setenv(VAR, "")
        assert env_str(VAR, default=".dear-cache") == ".dear-cache"
        monkeypatch.setenv(VAR, "   ")
        assert env_str(VAR, default=".dear-cache") == ".dear-cache"


class TestEnvFloat:
    def test_valid_float(self, monkeypatch):
        monkeypatch.setenv(VAR, "0.25")
        assert env_float(VAR) == 0.25
        monkeypatch.setenv(VAR, " 1e-3 ")
        assert env_float(VAR) == 1e-3

    def test_unset_and_empty_return_default(self, monkeypatch):
        assert env_float(VAR) is None
        assert env_float(VAR, default=0.01) == 0.01
        monkeypatch.setenv(VAR, "  ")
        assert env_float(VAR, default=0.01) == 0.01

    def test_non_numeric_warns(self, monkeypatch):
        monkeypatch.setenv(VAR, "fast")
        with pytest.warns(RuntimeWarning, match=VAR):
            assert env_float(VAR, default=0.5) == 0.5

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "-0.1")
        with pytest.warns(RuntimeWarning):
            assert env_float(VAR, default=0.01, minimum=0.0) == 0.01
        monkeypatch.setenv(VAR, "0.0")
        assert env_float(VAR, minimum=0.0) == 0.0
