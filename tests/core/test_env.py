"""Validated DEAR_* environment parsing (repro.core.env)."""

from __future__ import annotations

import warnings

import pytest

from repro.core.env import env_flag, env_int

VAR = "DEAR_TEST_KNOB"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(VAR, raising=False)


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", " on ", "yes", "Y"])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR, default=False) is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no", " n "])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR, default=True) is False

    def test_unset_and_empty_return_default(self, monkeypatch):
        assert env_flag(VAR, default=True) is True
        assert env_flag(VAR, default=False) is False
        monkeypatch.setenv(VAR, "   ")
        assert env_flag(VAR, default=True) is True

    def test_typo_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(VAR, "ture")
        with pytest.warns(RuntimeWarning, match=VAR):
            assert env_flag(VAR, default=True) is True
        monkeypatch.setenv(VAR, "enabledd")
        with pytest.warns(RuntimeWarning):
            assert env_flag(VAR, default=False) is False

    def test_valid_values_do_not_warn(self, monkeypatch):
        monkeypatch.setenv(VAR, "true")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_flag(VAR) is True


class TestEnvInt:
    def test_valid_integer(self, monkeypatch):
        monkeypatch.setenv(VAR, "8")
        assert env_int(VAR) == 8

    def test_unset_returns_default(self):
        assert env_int(VAR) is None
        assert env_int(VAR, default=3) == 3

    def test_non_integer_warns(self, monkeypatch):
        monkeypatch.setenv(VAR, "lots")
        with pytest.warns(RuntimeWarning, match=VAR):
            assert env_int(VAR, default=2) == 2

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.warns(RuntimeWarning):
            assert env_int(VAR, default=1, minimum=1) == 1
        monkeypatch.setenv(VAR, "4")
        assert env_int(VAR, minimum=1) == 4
