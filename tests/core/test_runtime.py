"""End-to-end tests of the DeAR runtime (DistOptim + hooks).

These exercise the paper's Listing 1 contract with real numbers: the
decoupled, hook-driven, lazily-applied aggregation must produce
parameter trajectories bit-identical to fused all-reduce S-SGD.
"""

import numpy as np
import pytest

import repro.core as dear
from repro.core.dear_runtime import DeARRuntime
from repro.training.autograd import Tensor
from repro.training.data import SyntheticRegression
from repro.training.modules import MLP, mse_loss
from repro.training.optim import SGD
from repro.training.parallel import DataParallelTrainer


def factory():
    return MLP((8, 16, 4), seed=21)


def _train_with_distoptim(world_size=4, steps=4, buffer_bytes=2048, momentum=0.9,
                          algorithm="ring", **runtime_kwargs):
    data = SyntheticRegression(num_samples=256, in_features=8, out_features=4, seed=6)
    models = [factory() for _ in range(world_size)]
    runtime = dear.init(
        world_size, buffer_bytes=buffer_bytes, algorithm=algorithm, **runtime_kwargs
    )
    optims = [
        dear.DistOptim(SGD(m.parameters(), lr=0.05, momentum=momentum), m, runtime)
        for m in models
    ]
    iterator = zip(*[data.batches(r, world_size, 8) for r in range(world_size)])
    for _, batches in zip(range(steps), iterator):
        for rank, (features, targets) in enumerate(batches):
            model = models[rank]
            model.zero_grad()
            loss = mse_loss(model(Tensor(features)), Tensor(targets))
            loss.backward()
            optims[rank].step()
    for optim in optims:
        optim.synchronize()
    return models, runtime


def _reference_trajectory(world_size=4, steps=4, buffer_bytes=2048, momentum=0.9):
    data = SyntheticRegression(num_samples=256, in_features=8, out_features=4, seed=6)
    trainer = DataParallelTrainer(
        factory, world_size, lr=0.05, momentum=momentum,
        strategy="allreduce", buffer_bytes=buffer_bytes,
    )
    iterator = zip(*[data.batches(r, world_size, 8) for r in range(world_size)])
    for _, batches in zip(range(steps), iterator):
        trainer.train_step(list(batches))
    return trainer.parameter_snapshot()


class TestDistOptimEquivalence:
    def test_bit_identical_to_fused_allreduce(self):
        models, _ = _train_with_distoptim()
        reference = _reference_trajectory()
        for param, expected in zip(models[0].parameters(), reference):
            np.testing.assert_array_equal(param.data, expected)

    def test_all_ranks_identical(self):
        models, _ = _train_with_distoptim()
        for model in models[1:]:
            for a, b in zip(models[0].parameters(), model.parameters()):
                np.testing.assert_array_equal(a.data, b.data)

    def test_per_tensor_fusion_also_exact(self):
        models, _ = _train_with_distoptim(buffer_bytes=None)
        reference = _reference_trajectory(buffer_bytes=None)
        for param, expected in zip(models[0].parameters(), reference):
            np.testing.assert_array_equal(param.data, expected)

    def test_no_momentum(self):
        models, _ = _train_with_distoptim(momentum=0.0)
        reference = _reference_trajectory(momentum=0.0)
        for param, expected in zip(models[0].parameters(), reference):
            np.testing.assert_array_equal(param.data, expected)

    def test_two_ranks(self):
        models, _ = _train_with_distoptim(world_size=2)
        reference = _reference_trajectory(world_size=2)
        for param, expected in zip(models[0].parameters(), reference):
            np.testing.assert_array_equal(param.data, expected)

    def test_tree_algorithm(self):
        models, runtime = _train_with_distoptim(algorithm="tree", steps=2)
        assert runtime.reduce_scatters == runtime.all_gathers

    def test_collective_counts(self):
        _, runtime = _train_with_distoptim(steps=3)
        assert runtime.reduce_scatters == 3 * runtime.num_groups
        assert runtime.all_gathers == 3 * runtime.num_groups

    def test_updates_deferred_until_next_forward(self):
        """After step() but before the next forward, parameters must be
        untouched — the defining property of FeedPipe pipelining."""
        world_size = 2
        data = SyntheticRegression(num_samples=64, in_features=8, out_features=4, seed=7)
        models = [factory() for _ in range(world_size)]
        before = [np.array(p.data, copy=True) for p in models[0].parameters()]
        runtime = dear.init(world_size, buffer_bytes=2048)
        optims = [
            dear.DistOptim(SGD(m.parameters(), lr=0.05), m, runtime) for m in models
        ]
        batches = [next(data.batches(r, world_size, 8)) for r in range(world_size)]
        for rank, (features, targets) in enumerate(batches):
            models[rank].zero_grad()
            mse_loss(models[rank](Tensor(features)), Tensor(targets)).backward()
            optims[rank].step()
        for param, snapshot in zip(models[0].parameters(), before):
            np.testing.assert_array_equal(param.data, snapshot)
        # synchronize() flushes the pending updates:
        optims[0].synchronize()
        changed = any(
            not np.array_equal(p.data, s)
            for p, s in zip(models[0].parameters(), before)
        )
        assert changed

    def test_synchronize_idempotent(self):
        models, _ = _train_with_distoptim(steps=2)
        snapshot = [np.array(p.data, copy=True) for p in models[0].parameters()]
        # models trained via helper already synchronized; a second flush
        # must be a no-op (no pending epoch).
        # (Re-wrapping is not allowed; flush is reachable via runtime.)
        assert all(
            np.array_equal(p.data, s)
            for p, s in zip(models[0].parameters(), snapshot)
        )


class TestRuntimeValidation:
    def test_over_registration_rejected(self):
        runtime = DeARRuntime(1, buffer_bytes=None)
        dear.DistOptim(SGD(factory().parameters(), lr=0.1), factory(), runtime)
        with pytest.raises(RuntimeError):
            dear.DistOptim(SGD(factory().parameters(), lr=0.1), factory(), runtime)

    def test_structure_mismatch_rejected(self):
        runtime = DeARRuntime(2, buffer_bytes=None)
        model_a = factory()
        dear.DistOptim(SGD(model_a.parameters(), lr=0.1), model_a, runtime)
        other = MLP((8, 32, 4), seed=0)  # different widths
        with pytest.raises(ValueError):
            dear.DistOptim(SGD(other.parameters(), lr=0.1), other, runtime)

    def test_missing_gradients_detected_at_sync_point(self):
        """If a rank skips backward, the sync barrier must complain."""
        world_size = 2
        models = [factory() for _ in range(world_size)]
        runtime = dear.init(world_size, buffer_bytes=2048)
        optims = [
            dear.DistOptim(SGD(m.parameters(), lr=0.05), m, runtime) for m in models
        ]
        # rank 0 runs backward, rank 1 does not
        features = np.ones((2, 8))
        targets = np.zeros((2, 4))
        mse_loss(models[0](Tensor(features)), Tensor(targets)).backward()
        optims[0].step()
        with pytest.raises(RuntimeError):
            optims[1].step()

    def test_lockstep_violation_detected(self):
        """A rank racing ahead into the next forward before peers have
        pushed their gradients must get a clear error."""
        world_size = 2
        models = [factory() for _ in range(world_size)]
        runtime = dear.init(world_size, buffer_bytes=2048)
        optims = [
            dear.DistOptim(SGD(m.parameters(), lr=0.05), m, runtime) for m in models
        ]
        features = np.ones((2, 8))
        targets = np.zeros((2, 4))
        # Both ranks complete iteration 0 properly.
        for rank in range(world_size):
            models[rank].zero_grad()
            mse_loss(models[rank](Tensor(features)), Tensor(targets)).backward()
            optims[rank].step()
        # Rank 0 starts iteration 1's forward+backward+step, then tries
        # to start iteration 2's forward while rank 1 never ran iter 1:
        models[0].zero_grad()
        mse_loss(models[0](Tensor(features)), Tensor(targets)).backward()
        optims[0].step()
        with pytest.raises(RuntimeError):
            models[0](Tensor(features))
