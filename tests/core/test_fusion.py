"""Unit and property tests for the tensor fusion controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fusion import (
    FusionGroup,
    FusionPlan,
    buffer_size_groups,
    layer_count_groups,
    mg_wfbp_groups,
    no_fusion_groups,
    plan_for_policy,
)
from repro.models.zoo import get_model
from tests.conftest import build_tiny_model


def _assert_valid_partition(plan: FusionPlan) -> None:
    """Every tensor appears exactly once, in backward order."""
    expected = [t.name for t in plan.model.tensors_backward_order()]
    actual = [t.name for group in plan for t in group.tensors]
    assert actual == expected


class TestNoFusion:
    def test_one_group_per_tensor(self):
        model = build_tiny_model()
        plan = no_fusion_groups(model)
        assert plan.num_groups == model.num_tensors
        _assert_valid_partition(plan)

    def test_group_sizes_match_tensors(self):
        model = build_tiny_model()
        plan = no_fusion_groups(model)
        backward = model.tensors_backward_order()
        for group, tensor in zip(plan, backward):
            assert group.nbytes == tensor.nbytes


class TestBufferSizeGroups:
    def test_respects_threshold(self):
        model = get_model("resnet50")
        plan = buffer_size_groups(model, 25e6)
        for group in plan:
            # A group may exceed the buffer only if it is a single tensor.
            assert group.nbytes <= 25e6 or len(group.tensors) == 1
        _assert_valid_partition(plan)

    def test_total_bytes_preserved(self):
        model = get_model("resnet50")
        plan = buffer_size_groups(model, 25e6)
        assert plan.total_bytes == model.gradient_bytes

    def test_huge_buffer_gives_one_group(self):
        model = build_tiny_model()
        plan = buffer_size_groups(model, 1e12)
        assert plan.num_groups == 1

    def test_tiny_buffer_gives_per_tensor_groups(self):
        model = build_tiny_model()
        plan = buffer_size_groups(model, 1.0)
        assert plan.num_groups == model.num_tensors

    def test_smaller_buffer_never_fewer_groups(self):
        model = get_model("densenet201")
        counts = [
            buffer_size_groups(model, b).num_groups
            for b in (1e6, 5e6, 25e6, 100e6)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_invalid_buffer_rejected(self):
        with pytest.raises(ValueError):
            buffer_size_groups(build_tiny_model(), 0)

    @settings(deadline=None, max_examples=25)
    @given(buffer_mb=st.floats(0.01, 200))
    def test_partition_property(self, buffer_mb):
        model = get_model("resnet50")
        plan = buffer_size_groups(model, buffer_mb * 1e6)
        _assert_valid_partition(plan)


class TestLayerCountGroups:
    def test_each_group_spans_at_most_n_layers(self):
        model = get_model("resnet50")
        plan = layer_count_groups(model, 4)
        for group in plan:
            assert len(set(t.layer_index for t in group.tensors)) <= 4
        _assert_valid_partition(plan)

    def test_group_count(self):
        model = build_tiny_model(num_blocks=4)  # 9 layers total
        plan = layer_count_groups(model, 4)
        assert plan.num_groups == 3  # ceil(9 / 4)

    def test_single_layer_groups(self):
        model = build_tiny_model()
        plan = layer_count_groups(model, 1)
        assert plan.num_groups == model.num_layers

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            layer_count_groups(build_tiny_model(), 0)


class TestMGWFBPGroups:
    def test_merges_within_startup_window(self):
        model = build_tiny_model(num_blocks=2)  # 5 layers
        tensors = model.tensors_backward_order()
        # All tensors ready at nearly the same instant -> one group.
        plan = mg_wfbp_groups(model, [0.001 * i for i in range(len(tensors))], 1.0)
        assert plan.num_groups == 1

    def test_splits_beyond_startup_window(self):
        model = build_tiny_model(num_blocks=2)
        tensors = model.tensors_backward_order()
        # Large gaps -> every tensor its own group.
        plan = mg_wfbp_groups(model, [10.0 * i for i in range(len(tensors))], 1.0)
        assert plan.num_groups == len(tensors)
        _assert_valid_partition(plan)

    def test_length_mismatch_rejected(self):
        model = build_tiny_model()
        with pytest.raises(ValueError):
            mg_wfbp_groups(model, [0.0], 1.0)

    def test_negative_startup_rejected(self):
        model = build_tiny_model()
        ready = [0.0] * model.num_tensors
        with pytest.raises(ValueError):
            mg_wfbp_groups(model, ready, -1.0)


class TestFusionPlan:
    def test_groups_for_layer(self):
        model = build_tiny_model()
        plan = buffer_size_groups(model, 100e3)
        for layer in model.layers:
            groups = plan.groups_for_layer(layer.index)
            assert groups, f"layer {layer.index} not covered"
            covered = {
                t.name for g in groups for t in g.tensors
                if t.layer_index == layer.index
            }
            expected = {t.name for t in layer.tensors}
            assert covered == expected

    def test_groups_forward_order_sorted_by_first_layer(self):
        model = get_model("resnet50")
        plan = buffer_size_groups(model, 25e6)
        forward = plan.groups_forward_order()
        firsts = [g.first_layer for g in forward]
        assert firsts == sorted(firsts)

    def test_forward_order_is_reverse_of_backward(self):
        model = get_model("resnet50")
        plan = buffer_size_groups(model, 25e6)
        assert [g.index for g in plan.groups_forward_order()] == list(
            reversed(range(plan.num_groups))
        )

    def test_invalid_partition_rejected(self):
        model = build_tiny_model()
        tensors = model.tensors_backward_order()
        # Drop one tensor -> not a partition.
        groups = [FusionGroup(index=0, tensors=tuple(tensors[:-1]))]
        with pytest.raises(ValueError):
            FusionPlan(model, groups)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            FusionGroup(index=0, tensors=())

    def test_max_group_bytes(self):
        model = get_model("resnet50")
        plan = buffer_size_groups(model, 25e6)
        assert plan.max_group_bytes == max(g.nbytes for g in plan)


class TestPlanForPolicy:
    def test_dispatch(self):
        model = build_tiny_model()
        assert plan_for_policy(model, "none").policy == "none"
        assert plan_for_policy(model, "buffer", buffer_bytes=1e6).num_groups >= 1
        assert plan_for_policy(model, "layers", layers_per_group=2).num_groups >= 1
        ready = [0.1 * i for i in range(model.num_tensors)]
        assert plan_for_policy(
            model, "mg", ready_times=ready, startup_time=0.05
        ).num_groups >= 1

    def test_missing_arguments(self):
        model = build_tiny_model()
        with pytest.raises(ValueError):
            plan_for_policy(model, "buffer")
        with pytest.raises(ValueError):
            plan_for_policy(model, "mg")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            plan_for_policy(build_tiny_model(), "telepathy")
