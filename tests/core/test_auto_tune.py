"""Tests for the decoupling-configuration auto-tuner."""

import pytest

from repro.core.auto_tune import tune_decoupling
from repro.models.zoo import get_model
from repro.network.presets import cluster_10gbe
from repro.schedulers.base import simulate
from tests.conftest import build_tiny_model


class TestTuneDecoupling:
    @pytest.fixture(scope="class")
    def choice(self):
        return tune_decoupling(
            build_tiny_model(), cluster_10gbe(), bo_trials=6,
            iteration_compute=0.03,
        )

    def test_all_families_evaluated(self, choice):
        assert set(choice.per_algorithm) == {
            "ring", "halving_doubling", "tree", "hierarchical",
        }

    def test_winner_is_argmax(self, choice):
        best = max(t for _, t in choice.per_algorithm.values())
        assert choice.throughput == pytest.approx(best)
        assert choice.per_algorithm[choice.algorithm][1] == pytest.approx(best)

    def test_history_records_all_trials(self, choice):
        assert len(choice.history) == 4 * 6

    def test_beats_or_matches_default_ring_config(self, choice):
        default = simulate(
            "dear", build_tiny_model(), cluster_10gbe(),
            fusion="buffer", buffer_bytes=25e6, iteration_compute=0.03,
        )
        assert choice.throughput >= default.throughput * 0.999

    def test_describe_mentions_winner(self, choice):
        assert choice.algorithm in choice.describe()

    def test_non_power_of_two_skips_halving_doubling(self):
        cluster = cluster_10gbe(nodes=3, gpus_per_node=2)  # P = 6
        choice = tune_decoupling(
            build_tiny_model(), cluster, bo_trials=3, iteration_compute=0.03,
        )
        assert "halving_doubling" not in choice.per_algorithm
        assert choice.algorithm in ("ring", "tree", "hierarchical")

    def test_restricted_candidate_list(self):
        choice = tune_decoupling(
            build_tiny_model(), cluster_10gbe(), algorithms=("ring",),
            bo_trials=3, iteration_compute=0.03,
        )
        assert choice.algorithm == "ring"
        assert set(choice.per_algorithm) == {"ring"}

    def test_no_usable_family_raises(self):
        cluster = cluster_10gbe(nodes=3, gpus_per_node=2)
        with pytest.raises(ValueError):
            tune_decoupling(
                build_tiny_model(), cluster,
                algorithms=("halving_doubling",), iteration_compute=0.03,
            )

    def test_on_paper_model(self):
        choice = tune_decoupling(
            get_model("resnet50"), cluster_10gbe(),
            algorithms=("ring", "tree"), bo_trials=5,
        )
        assert choice.throughput > 0
        assert choice.iteration_time > 0
