"""Test package."""
