"""Tests for the run-time buffer-size tuner."""

import numpy as np
import pytest

from repro.core.bo_tuner import BufferSizeTuner


def _objective(buffer_bytes: float) -> float:
    """Smooth log-quadratic peak at 20 MB."""
    return 1000.0 * np.exp(-((np.log(buffer_bytes / 20e6)) ** 2))


class TestBufferSizeTuner:
    def test_starts_at_paper_default(self):
        tuner = BufferSizeTuner()
        assert tuner.buffer_bytes == pytest.approx(25e6)

    def test_no_retune_mid_trial(self):
        tuner = BufferSizeTuner(steps_per_trial=5)
        for _ in range(4):
            assert tuner.record_step(samples=64, elapsed=0.1) is None

    def test_retune_at_trial_boundary(self):
        tuner = BufferSizeTuner(steps_per_trial=3)
        tuner.record_step(64, 0.1)
        tuner.record_step(64, 0.1)
        suggestion = tuner.record_step(64, 0.1)
        assert suggestion is not None
        assert 1e6 <= suggestion <= 100e6
        assert tuner.trials_completed == 1

    def test_throughput_averaged_over_trial(self):
        tuner = BufferSizeTuner(steps_per_trial=2)
        tuner.record_step(samples=50, elapsed=1.0)
        tuner.record_step(samples=150, elapsed=1.0)
        # 200 samples / 2 s = 100 samples/s
        assert tuner.history[0][1] == pytest.approx(100.0)

    def test_converges_near_optimum(self):
        tuner = BufferSizeTuner(steps_per_trial=1, max_trials=15, seed=0)
        for _ in range(15):
            throughput = _objective(tuner.buffer_bytes)
            tuner.record_step(samples=throughput, elapsed=1.0)
        assert tuner.converged
        best_x, best_y = tuner.best
        assert best_y >= 0.9 * _objective(20e6)

    def test_converged_tuner_stops_changing(self):
        tuner = BufferSizeTuner(steps_per_trial=1, max_trials=3, seed=0)
        for _ in range(3):
            tuner.record_step(samples=100, elapsed=1.0)
        locked = tuner.buffer_bytes
        assert tuner.record_step(samples=100, elapsed=1.0) is None
        assert tuner.buffer_bytes == locked

    def test_history_records_all_trials(self):
        tuner = BufferSizeTuner(steps_per_trial=1, max_trials=5, seed=0)
        for _ in range(5):
            tuner.record_step(samples=_objective(tuner.buffer_bytes), elapsed=1.0)
        assert len(tuner.history) == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BufferSizeTuner(steps_per_trial=0)
        with pytest.raises(ValueError):
            BufferSizeTuner(max_trials=0)
        with pytest.raises(ValueError):
            BufferSizeTuner().record_step(samples=1, elapsed=0.0)
