"""Pricing of synthesized schedules: preset parity and autotuner reach."""

import numpy as np
import pytest

from repro.collectives.synthesis import Topology, schedule_times, synthesize
from repro.network.autotuner import (
    build_selection_table,
    candidate_selections,
    clear_tables,
)
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_10gbe, cluster_nvlink, paper_testbed
from repro.network.protocol import collective_times

SIZES = np.array([1024.0, 65536.0, 2.0**20, 2.0**26])


def _link_ab(link):
    return (link.alpha, link.beta)


class TestPresetParity:
    """Where a synthesized schedule coincides with a preset structure,
    its step-level price must reproduce the closed-form formula."""

    def test_flat_ring_prices_exactly_like_ring_preset(self):
        cluster = cluster_10gbe()
        schedule = synthesize(Topology.flat(cluster.world_size),
                              "all_reduce", "bandwidth")
        # Same edge classes as the preset's flat model: price every edge
        # on the flat (bottleneck) alpha-beta.
        flat_ab = cluster.flat_alpha_beta()
        mine = schedule_times(schedule, SIZES, flat_ab, flat_ab)
        preset = collective_times("all_reduce", SIZES, cluster, algorithm="ring")
        np.testing.assert_allclose(mine, preset, rtol=1e-12)

    @pytest.mark.parametrize("op", ["reduce_scatter", "all_gather", "all_reduce"])
    def test_two_level_ring_prices_like_hierarchical_preset(self, op):
        cluster = cluster_10gbe()
        schedule = synthesize(Topology.from_cluster(cluster), op, "bandwidth")
        mine = schedule_times(
            schedule, SIZES,
            _link_ab(cluster.intra_link), _link_ab(cluster.inter_link),
        )
        preset = collective_times(op, SIZES, cluster, algorithm="hierarchical")
        np.testing.assert_allclose(mine, preset, rtol=1e-12)

    def test_collective_times_accepts_synth_algorithms(self):
        cluster = cluster_10gbe()
        bw = collective_times("all_reduce", SIZES, cluster, algorithm="synth_bw")
        hier = collective_times("all_reduce", SIZES, cluster, algorithm="hierarchical")
        np.testing.assert_allclose(bw, hier, rtol=1e-12)
        lat = collective_times("all_reduce", SIZES, cluster, algorithm="synth_lat")
        assert lat.shape == SIZES.shape
        assert np.all(lat > 0)

    def test_zero_bytes_are_free(self):
        cluster = cluster_10gbe()
        times = collective_times(
            "all_reduce", np.array([0.0, 1024.0]), cluster, algorithm="synth_lat"
        )
        assert times[0] == 0.0 and times[1] > 0.0


class TestSynthWins:
    """The whole point: a synthesized schedule the presets can't express
    beats every preset on at least one declared topology/size point."""

    def test_two_level_latency_beats_all_presets_on_10gbe_small(self):
        cluster = cluster_10gbe()  # 16 nodes x 4 GPUs, 23us inter alpha
        small = np.array([4096.0])
        synth = collective_times("all_reduce", small, cluster,
                                 algorithm="synth_lat")[0]
        for algorithm in ("ring", "halving_doubling", "tree", "hierarchical"):
            preset = collective_times("all_reduce", small, cluster,
                                      algorithm=algorithm)[0]
            assert synth < preset, (algorithm, synth, preset)

    def test_autotuner_table_selects_synth_on_10gbe(self):
        table = build_selection_table(cluster_10gbe())
        winners = {
            selection.algorithm
            for buckets in table.entries.values()
            for selection in buckets.values()
        }
        assert "synth_lat" in winners
        picked = table.lookup("all_reduce", 4096.0)
        assert picked.algorithm == "synth_lat"

    def test_auto_model_routes_through_synth_selection(self):
        clear_tables()
        try:
            cluster = cluster_10gbe()
            table = build_selection_table(cluster)
            selection = table.lookup("all_reduce", 4096.0)
            assert selection.algorithm == "synth_lat"
            auto = CollectiveTimeModel(cluster, algorithm="auto", table=table)
            direct = CollectiveTimeModel(
                cluster, algorithm=selection.algorithm,
                protocol=selection.protocol, channels=selection.channels,
            )
            assert auto.all_reduce(4096.0) == direct.all_reduce(4096.0)
        finally:
            clear_tables()


class TestCandidatePool:
    def test_synth_candidates_present_and_ordered_last(self):
        pool = candidate_selections(cluster_10gbe())
        algorithms = [selection.algorithm for selection in pool]
        assert algorithms[0] == "ring"
        assert "synth_lat" in algorithms and "synth_bw" in algorithms
        assert max(algorithms.index(a) for a in ("ring", "tree", "hierarchical")) \
            < min(algorithms.index(a) for a in ("synth_lat", "synth_bw"))

    def test_single_gpu_nodes_drop_synth_bw(self):
        cluster = cluster_10gbe(nodes=8, gpus_per_node=1)
        algorithms = {s.algorithm for s in candidate_selections(cluster)}
        assert "synth_lat" in algorithms
        assert "synth_bw" not in algorithms

    def test_nvlink_preset_cluster(self):
        cluster = cluster_nvlink()
        assert cluster.world_size == 64
        assert cluster.intra_link.name == "NVLink"
        assert paper_testbed("nvlink").name == cluster.name


class TestCostModelIntegration:
    def test_synth_algorithms_accepted(self):
        cluster = cluster_10gbe()
        for algorithm in ("synth_lat", "synth_bw"):
            model = CollectiveTimeModel(cluster, algorithm=algorithm)
            assert model.all_reduce(2.0**20) > 0
            assert model.reduce_scatter(2.0**20) + model.all_gather(2.0**20) == \
                pytest.approx(model.all_reduce(2.0**20))

    def test_sweep_matches_scalar_path(self):
        model = CollectiveTimeModel(cluster_10gbe(), algorithm="synth_lat")
        swept = model.sweep("all_reduce", SIZES)
        scalars = np.array([model.all_reduce(size) for size in SIZES])
        np.testing.assert_allclose(swept, scalars, rtol=1e-12)

    def test_all_to_all_falls_back_to_pairwise(self):
        cluster = cluster_10gbe()
        synth = CollectiveTimeModel(cluster, algorithm="synth_lat")
        ring = CollectiveTimeModel(cluster, algorithm="ring")
        assert synth.all_to_all(2.0**20) == ring.all_to_all(2.0**20)
