"""Unit and property tests for the collective time formulas."""

import pytest
from hypothesis import given, strategies as st

from repro.network.cost_model import (
    CollectiveTimeModel,
    broadcast_time,
    hierarchical_all_reduce_time,
    negotiation_time,
    recursive_doubling_all_gather_time,
    recursive_halving_reduce_scatter_time,
    ring_all_gather_time,
    ring_all_reduce_time,
    ring_reduce_scatter_time,
    tree_all_reduce_time,
)
from repro.network.presets import cluster_100gbib, cluster_10gbe

ALPHA, BETA = 23e-6, 0.8e-9


class TestRingFormulas:
    def test_reduce_scatter_matches_eq3(self):
        # (P-1) * (alpha + d/P * beta)
        expected = 63 * (ALPHA + (1e6 / 64) * BETA)
        assert ring_reduce_scatter_time(1e6, 64, ALPHA, BETA) == pytest.approx(expected)

    def test_all_gather_matches_eq4(self):
        expected = 63 * (ALPHA + (1e6 / 64) * BETA)
        assert ring_all_gather_time(1e6, 64, ALPHA, BETA) == pytest.approx(expected)

    def test_all_reduce_matches_eq5(self):
        expected = 2 * 63 * ALPHA + 2 * 63 / 64 * 1e6 * BETA
        assert ring_all_reduce_time(1e6, 64, ALPHA, BETA) == pytest.approx(expected)

    def test_single_worker_is_free(self):
        assert ring_all_reduce_time(1e9, 1, ALPHA, BETA) == 0.0

    def test_gamma_adds_reduction_cost(self):
        base = ring_reduce_scatter_time(1e6, 8, ALPHA, BETA)
        with_gamma = ring_reduce_scatter_time(1e6, 8, ALPHA, BETA, gamma=BETA)
        assert with_gamma > base

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ring_all_reduce_time(-1, 8, ALPHA, BETA)

    @given(
        nbytes=st.floats(1e3, 1e9),
        p=st.integers(2, 256),
    )
    def test_decoupling_identity(self, nbytes, p):
        """t_rs + t_ag == t_ar: the zero-overhead decoupling (§III-A)."""
        rs = ring_reduce_scatter_time(nbytes, p, ALPHA, BETA)
        ag = ring_all_gather_time(nbytes, p, ALPHA, BETA)
        ar = ring_all_reduce_time(nbytes, p, ALPHA, BETA)
        assert rs + ag == pytest.approx(ar, rel=1e-12)

    @given(nbytes=st.floats(1e3, 1e9), p=st.integers(2, 128))
    def test_rs_equals_ag(self, nbytes, p):
        """RS and AG have identical complexity (paper Eq. 3 vs Eq. 4)."""
        assert ring_reduce_scatter_time(nbytes, p, ALPHA, BETA) == pytest.approx(
            ring_all_gather_time(nbytes, p, ALPHA, BETA)
        )

    @given(p=st.integers(2, 64))
    def test_startup_grows_linearly_with_workers(self, p):
        """The latency term is proportional to P-1 (§II-D)."""
        small = ring_all_reduce_time(1.0, p, ALPHA, 0.0)
        assert small == pytest.approx(2 * (p - 1) * ALPHA)

    @given(nbytes=st.floats(1e4, 1e8))
    def test_monotone_in_message_size(self, nbytes):
        assert ring_all_reduce_time(nbytes * 2, 64, ALPHA, BETA) > ring_all_reduce_time(
            nbytes, 64, ALPHA, BETA
        )


class TestOtherAlgorithms:
    def test_halving_doubling_requires_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_halving_reduce_scatter_time(1e6, 12, ALPHA, BETA)

    def test_halving_doubling_lower_latency_than_ring(self):
        ring = ring_reduce_scatter_time(1e3, 64, ALPHA, BETA)
        hd = recursive_halving_reduce_scatter_time(1e3, 64, ALPHA, BETA)
        assert hd < ring  # log P rounds vs P-1 rounds

    def test_halving_doubling_same_bandwidth_term(self):
        hd = recursive_halving_reduce_scatter_time(1e8, 64, 0.0, BETA)
        ring = ring_reduce_scatter_time(1e8, 64, 0.0, BETA)
        assert hd == pytest.approx(ring, rel=1e-9)

    def test_doubling_mirrors_halving(self):
        assert recursive_doubling_all_gather_time(1e6, 32, ALPHA, BETA) <= (
            recursive_halving_reduce_scatter_time(1e6, 32, ALPHA, BETA)
        )

    def test_tree_all_reduce_positive(self):
        assert tree_all_reduce_time(1e6, 64, ALPHA, BETA) > 0

    def test_tree_latency_logarithmic(self):
        t64 = tree_all_reduce_time(1.0, 64, ALPHA, 0.0, pipeline_chunks=1)
        t4096 = tree_all_reduce_time(1.0, 4096, ALPHA, 0.0, pipeline_chunks=1)
        assert t4096 / t64 == pytest.approx(2.0, rel=0.01)  # log 4096 / log 64

    def test_broadcast_time_log_rounds(self):
        assert broadcast_time(1e6, 64, ALPHA, BETA) == pytest.approx(
            6 * (ALPHA + 1e6 * BETA)
        )

    def test_hierarchical_all_reduce_positive(self):
        t = hierarchical_all_reduce_time(1e6, 16, 4, 3e-6, 1e-10, ALPHA, BETA)
        assert t > 0

    def test_negotiation_latency_bound(self):
        assert negotiation_time(64, ALPHA) == pytest.approx(
            2 * 63 * ALPHA, rel=1e-3
        )


class TestCollectiveTimeModel:
    def test_paper_spot_check_1mb(self):
        """§II-D: 1 MB all-reduce on 64 GPUs / 10GbE ~ 4.5 ms."""
        model = CollectiveTimeModel(cluster_10gbe())
        assert model.all_reduce(1e6) == pytest.approx(4.5e-3, rel=0.05)

    def test_paper_spot_check_500kb(self):
        """§II-D: 500 KB all-reduce ~ 3.9 ms."""
        model = CollectiveTimeModel(cluster_10gbe())
        assert model.all_reduce(5e5) == pytest.approx(3.9e-3, rel=0.07)

    def test_decoupling_identity_through_model(self):
        model = CollectiveTimeModel(cluster_10gbe())
        for nbytes in (1e3, 1e6, 1e8):
            assert model.reduce_scatter(nbytes) + model.all_gather(
                nbytes
            ) == pytest.approx(model.all_reduce(nbytes))

    def test_ib_faster_than_ethernet(self):
        eth = CollectiveTimeModel(cluster_10gbe())
        ib = CollectiveTimeModel(cluster_100gbib())
        assert ib.all_reduce(1e8) < eth.all_reduce(1e8)

    def test_zero_bytes_free(self):
        model = CollectiveTimeModel(cluster_10gbe())
        assert model.all_reduce(0) == 0.0
        assert model.reduce_scatter(0) == 0.0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            CollectiveTimeModel(cluster_10gbe(), algorithm="smoke-signals")

    def test_halving_doubling_requires_pow2_world(self):
        cluster = cluster_10gbe(nodes=3, gpus_per_node=2)
        with pytest.raises(ValueError):
            CollectiveTimeModel(cluster, algorithm="halving_doubling")

    def test_startup_overhead_added_per_collective(self):
        plain = CollectiveTimeModel(cluster_10gbe())
        loaded = CollectiveTimeModel(cluster_10gbe(), startup_overhead=1e-3)
        assert loaded.reduce_scatter(1e6) == pytest.approx(
            plain.reduce_scatter(1e6) + 1e-3
        )

    def test_all_algorithms_usable(self):
        for algorithm in CollectiveTimeModel.ALGORITHMS:
            model = CollectiveTimeModel(cluster_10gbe(), algorithm=algorithm)
            assert model.all_reduce(1e6) > 0

    def test_min_bandwidth(self):
        model = CollectiveTimeModel(cluster_10gbe())
        assert model.min_bandwidth == pytest.approx(1.25e9)

    def test_describe(self):
        text = CollectiveTimeModel(cluster_10gbe()).describe()
        assert "ring" in text and "10GbE" in text


class TestMemoization:
    def test_repeat_queries_hit_the_memo(self):
        model = CollectiveTimeModel(cluster_10gbe())
        first = model.reduce_scatter(25e6)
        assert ("rs", 25e6) in model._memo
        assert model.reduce_scatter(25e6) == first

    def test_memoized_values_match_direct_formulas(self):
        model = CollectiveTimeModel(cluster_10gbe())
        for nbytes in (1.0, 1e4, 25e6):
            for _ in range(2):  # second pass reads the memo
                assert model.reduce_scatter(nbytes) == model._reduce_scatter(nbytes)
                assert model.all_gather(nbytes) == model._all_gather(nbytes)

    def test_distinct_sizes_distinct_entries(self):
        model = CollectiveTimeModel(cluster_10gbe())
        model.all_gather(1e6)
        model.all_gather(2e6)
        assert model.all_gather(1e6) != model.all_gather(2e6)

    def test_memo_is_per_instance(self):
        fast_net = CollectiveTimeModel(cluster_100gbib())
        slow_net = CollectiveTimeModel(cluster_10gbe())
        assert fast_net.all_reduce(25e6) < slow_net.all_reduce(25e6)
