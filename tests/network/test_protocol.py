"""Protocol tiers, channel striping, and the bit-exact parity anchor."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.network.protocol import (
    LL,
    LL128,
    PROTOCOLS,
    SIMPLE,
    ProtocolSpec,
    channel_bandwidth_factor,
    channel_latency_factor,
    collective_time,
    collective_times,
    effective_alpha_beta,
    governing_link,
    resolve_protocol,
)

OPS = ("reduce_scatter", "all_gather", "all_reduce")
SIZES = np.array([1.0, 1e3, 25e6, 1e9])


class TestProtocolSpecs:
    def test_simple_is_identity(self):
        assert SIMPLE.latency_factor == 1.0
        assert SIMPLE.bandwidth_factor == 1.0
        assert SIMPLE.beta_factor == 1.0

    def test_ll_trades_latency_for_bandwidth(self):
        assert LL.latency_factor < LL128.latency_factor < SIMPLE.latency_factor
        assert LL.beta_factor > LL128.beta_factor > SIMPLE.beta_factor

    def test_ll128_line_efficiency(self):
        # 120 payload bytes per 128-byte line.
        assert LL128.beta_factor == pytest.approx((128.0 / 120.0) / 0.9375)

    def test_resolve_by_name_and_spec(self):
        assert resolve_protocol("LL") is LL
        assert resolve_protocol(SIMPLE) is SIMPLE
        with pytest.raises(ValueError):
            resolve_protocol("morse-code")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSpec("bad", latency_factor=0.0, bandwidth_factor=1.0)
        with pytest.raises(ValueError):
            ProtocolSpec("bad", latency_factor=1.0, bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            ProtocolSpec("bad", latency_factor=1.0, bandwidth_factor=1.0,
                         wire_overhead=0.5)

    def test_registry_covers_three_tiers(self):
        assert sorted(PROTOCOLS) == ["ll", "ll128", "simple"]


class TestChannelFactors:
    def test_parity_at_calibrated_count(self):
        # Exactly 1.0 — not approximately — at the calibrated count.
        for base in (1, 2, 4, 8):
            assert channel_latency_factor(base, base) == 1.0
            assert channel_bandwidth_factor(base, base) == 1.0

    def test_fewer_channels_cut_latency_and_bandwidth(self):
        assert channel_latency_factor(1, 4) < 1.0
        assert channel_bandwidth_factor(1, 4) == pytest.approx(0.25)

    def test_more_channels_cost_latency_buy_nothing(self):
        assert channel_latency_factor(8, 4) > 1.0
        assert channel_bandwidth_factor(8, 4) == 1.0

    def test_latency_floor(self):
        # An aggressive tax cannot drive alpha below half the calibration.
        assert channel_latency_factor(1, 1024, tax=4.0) == 0.5

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            channel_latency_factor(0, 4)
        with pytest.raises(ValueError):
            channel_bandwidth_factor(4, 0)

    @given(channels=st.integers(1, 64), base=st.integers(1, 64))
    def test_factors_always_positive(self, channels, base):
        assert channel_latency_factor(channels, base) > 0
        assert channel_bandwidth_factor(channels, base) > 0

    def test_effective_alpha_beta_parity(self):
        # (SIMPLE, calibrated channels) returns the link numbers bit-exact.
        alpha, beta = effective_alpha_beta(23e-6, 0.8e-9, SIMPLE, 4, 4)
        assert alpha == 23e-6
        assert beta == 0.8e-9


class TestBitExactParity:
    """The load-bearing invariant: protocol off == plain model, bit-for-bit."""

    @pytest.mark.parametrize("cluster_fn", [cluster_10gbe, cluster_100gbib])
    @pytest.mark.parametrize("op", OPS)
    def test_default_call_matches_plain_model(self, cluster_fn, op):
        cluster = cluster_fn()
        model = CollectiveTimeModel(cluster)
        plain = {
            "reduce_scatter": model.reduce_scatter,
            "all_gather": model.all_gather,
            "all_reduce": model.all_reduce,
        }[op]
        for nbytes in SIZES:
            assert collective_time(op, float(nbytes), cluster) == plain(float(nbytes))

    @pytest.mark.parametrize("op", OPS)
    def test_explicit_parity_config_matches_plain_model(self, op):
        cluster = cluster_10gbe()
        link = governing_link(cluster)
        model = CollectiveTimeModel(cluster)
        plain = {
            "reduce_scatter": model.reduce_scatter,
            "all_gather": model.all_gather,
            "all_reduce": model.all_reduce,
        }[op]
        for nbytes in SIZES:
            t = collective_time(
                op, float(nbytes), cluster,
                protocol="simple", channels=link.channels, ring_chunks=1,
            )
            assert t == plain(float(nbytes))

    @pytest.mark.parametrize("algorithm", ["ring", "halving_doubling", "tree",
                                           "hierarchical"])
    def test_every_algorithm_matches_its_scalar_twin(self, algorithm):
        cluster = cluster_10gbe()
        scalar = CollectiveTimeModel(cluster, algorithm=algorithm)
        for nbytes in SIZES:
            assert collective_time(
                "all_reduce", float(nbytes), cluster, algorithm=algorithm
            ) == scalar.all_reduce(float(nbytes))

    def test_vector_matches_scalar_bitwise(self):
        cluster = cluster_100gbib()
        for op in OPS:
            vector = collective_times(op, SIZES, cluster, protocol="ll128")
            for nbytes, t in zip(SIZES, vector):
                assert collective_time(op, float(nbytes), cluster,
                                       protocol="ll128") == t


class TestProtocolBehaviour:
    def test_ll_wins_small_loses_large(self):
        cluster = cluster_100gbib()
        small = 1024.0
        large = float(2**28)
        assert collective_time("all_reduce", small, cluster, protocol="ll") < \
            collective_time("all_reduce", small, cluster)
        assert collective_time("all_reduce", large, cluster, protocol="ll") > \
            collective_time("all_reduce", large, cluster)

    def test_ll128_between_tiers_at_large_sizes(self):
        cluster = cluster_100gbib()
        large = float(2**28)
        simple = collective_time("all_reduce", large, cluster)
        ll128 = collective_time("all_reduce", large, cluster, protocol="ll128")
        ll = collective_time("all_reduce", large, cluster, protocol="ll")
        assert simple < ll128 < ll

    def test_capability_enforced(self):
        # The 10GbE socket transport has no LL/LL128 tiers.
        with pytest.raises(ValueError):
            collective_time("all_reduce", 1e6, cluster_10gbe(), protocol="ll")
        t = collective_times(
            "all_reduce", np.array([1e6]), cluster_10gbe(),
            protocol="ll", enforce_capability=False,
        )
        assert t[0] > 0

    def test_ring_chunks_pipelining_helps_large_messages(self):
        cluster = cluster_10gbe()
        large = float(2**28)
        plain = collective_time("all_reduce", large, cluster)
        chunked = collective_time("all_reduce", large, cluster, ring_chunks=8)
        assert chunked < plain

    def test_zero_bytes_free_under_any_config(self):
        t = collective_times(
            "all_reduce", np.array([0.0, 1e6]), cluster_100gbib(),
            protocol="ll", channels=1, startup_overhead=1e-3,
        )
        assert t[0] == 0.0
        assert t[1] > 1e-3

    def test_unknown_op_and_algorithm_rejected(self):
        with pytest.raises(ValueError):
            collective_time("broadcast", 1e6, cluster_10gbe())
        with pytest.raises(ValueError):
            collective_time("all_reduce", 1e6, cluster_10gbe(),
                            algorithm="smoke-signals")
        with pytest.raises(ValueError):
            collective_time("all_reduce", 1e6, cluster_10gbe(), ring_chunks=0)

    def test_evals_counter_counts_vector_passes(self):
        from repro.telemetry.registry import default_registry

        counter = default_registry().counter(
            "network.cost_model.evals", "vectorized cost-model size evaluations"
        )
        before = counter.value(op="all_reduce", algorithm="ring", protocol="simple")
        collective_times("all_reduce", SIZES, cluster_10gbe())
        after = counter.value(op="all_reduce", algorithm="ring", protocol="simple")
        assert after - before == SIZES.size


class TestModelProtocolMode:
    def test_fixed_protocol_through_model_facade(self):
        cluster = cluster_100gbib()
        model = CollectiveTimeModel(cluster, protocol="ll", channels=1)
        assert model.all_reduce(1024.0) == collective_time(
            "all_reduce", 1024.0, cluster, protocol="ll", channels=1
        )

    def test_auto_plus_fixed_protocol_rejected(self):
        with pytest.raises(ValueError):
            CollectiveTimeModel(cluster_100gbib(), algorithm="auto", protocol="ll")

    def test_sweep_matches_scalar_in_protocol_mode(self):
        model = CollectiveTimeModel(cluster_100gbib(), protocol="ll128",
                                    ring_chunks=4)
        out = model.sweep("all_reduce", SIZES)
        for nbytes, t in zip(SIZES, out):
            assert model.all_reduce(float(nbytes)) == t

    def test_describe_mentions_protocol(self):
        text = CollectiveTimeModel(cluster_100gbib(), protocol="ll",
                                   channels=2).describe()
        assert "ll" in text and "c2" in text
