"""Tests for the calibrated presets and the paper testbed."""

import pytest

from repro.network.presets import (
    ETHERNET_10G,
    INFINIBAND_100G,
    cluster_100gbib,
    cluster_10gbe,
    paper_testbed,
)


class TestPresets:
    def test_10gbe_wire_rate(self):
        assert ETHERNET_10G.bandwidth == pytest.approx(1.25e9)

    def test_ib_effective_bandwidth_below_wire_rate(self):
        # Calibrated to Table II; must stay below the 12.5 GB/s wire rate.
        assert 4e9 < INFINIBAND_100G.bandwidth < 12.5e9

    def test_ib_lower_latency_than_ethernet(self):
        assert INFINIBAND_100G.latency < ETHERNET_10G.latency

    def test_testbed_shape(self):
        cluster = cluster_10gbe()
        assert cluster.nodes == 16
        assert cluster.gpus_per_node == 4
        assert cluster.world_size == 64

    def test_ib_testbed_shares_shape(self):
        assert cluster_100gbib().world_size == cluster_10gbe().world_size

    def test_paper_testbed_lookup(self):
        assert paper_testbed("10gbe").inter_link is ETHERNET_10G
        assert paper_testbed("100GbIB").inter_link is INFINIBAND_100G
        assert paper_testbed("InfiniBand").inter_link is INFINIBAND_100G

    def test_paper_testbed_unknown(self):
        with pytest.raises(ValueError):
            paper_testbed("carrier-pigeon")

    def test_custom_sizes(self):
        assert cluster_10gbe(nodes=2, gpus_per_node=8).world_size == 16
