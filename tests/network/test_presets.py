"""Tests for the calibrated presets and the paper testbed."""

import pytest

from repro.network.presets import (
    ETHERNET_10G,
    INFINIBAND_100G,
    cluster_100gbib,
    cluster_10gbe,
    paper_testbed,
)


class TestPresets:
    def test_10gbe_wire_rate(self):
        assert ETHERNET_10G.bandwidth == pytest.approx(1.25e9)

    def test_ib_effective_bandwidth_below_wire_rate(self):
        # Calibrated to Table II; must stay below the 12.5 GB/s wire rate.
        assert 4e9 < INFINIBAND_100G.bandwidth < 12.5e9

    def test_ib_lower_latency_than_ethernet(self):
        assert INFINIBAND_100G.latency < ETHERNET_10G.latency

    def test_testbed_shape(self):
        cluster = cluster_10gbe()
        assert cluster.nodes == 16
        assert cluster.gpus_per_node == 4
        assert cluster.world_size == 64

    def test_ib_testbed_shares_shape(self):
        assert cluster_100gbib().world_size == cluster_10gbe().world_size

    def test_paper_testbed_lookup(self):
        assert paper_testbed("10gbe").inter_link is ETHERNET_10G
        assert paper_testbed("100GbIB").inter_link is INFINIBAND_100G
        assert paper_testbed("InfiniBand").inter_link is INFINIBAND_100G

    def test_paper_testbed_unknown(self):
        with pytest.raises(ValueError):
            paper_testbed("carrier-pigeon")

    def test_custom_sizes(self):
        assert cluster_10gbe(nodes=2, gpus_per_node=8).world_size == 16


class TestProtocolCapabilities:
    """The channel counts and protocol sets added by the autotuner PR."""

    def test_10gbe_is_simple_only(self):
        # Socket transport: no GPU-side LL/LL128 fast paths.
        assert ETHERNET_10G.protocols == ("simple",)

    def test_ib_runs_all_tiers(self):
        assert set(INFINIBAND_100G.protocols) == {"simple", "ll", "ll128"}

    def test_nvlink_runs_all_tiers(self):
        from repro.network.presets import NVLINK

        assert set(NVLINK.protocols) == {"simple", "ll", "ll128"}

    def test_channel_counts_calibrated(self):
        from repro.network.presets import NVLINK

        assert ETHERNET_10G.channels == 2
        assert INFINIBAND_100G.channels == 4
        assert NVLINK.channels == 8

    def test_scaled_links_keep_capabilities(self):
        scaled = INFINIBAND_100G.scaled(latency_factor=2.0)
        assert scaled.channels == INFINIBAND_100G.channels
        assert scaled.protocols == INFINIBAND_100G.protocols


class TestCalibrationUnchanged:
    """§II-D anchors must survive the protocol-aware defaults bit-for-bit.

    The presets gained channels/protocol metadata; with nothing opted in
    the priced times must still hit the paper's 4.5 ms / 3.9 ms spot
    checks at the seed's calibration tolerances — and the 1 MB anchor
    lands within 3% of the paper's figure.
    """

    def test_1mb_all_reduce_spot_check(self):
        from repro.network.cost_model import CollectiveTimeModel

        model = CollectiveTimeModel(cluster_10gbe())
        assert model.all_reduce(1e6) == pytest.approx(4.5e-3, rel=0.03)

    def test_500kb_all_reduce_spot_check(self):
        from repro.network.cost_model import CollectiveTimeModel

        model = CollectiveTimeModel(cluster_10gbe())
        assert model.all_reduce(5e5) == pytest.approx(3.9e-3, rel=0.07)

    def test_alpha_calibration(self):
        # The paper's measured per-hop latency on the 10GbE testbed.
        assert cluster_10gbe().flat_alpha_beta()[0] == pytest.approx(23e-6, rel=0.05)
