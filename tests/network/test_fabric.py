"""Unit tests for link and cluster specifications."""

import pytest

from repro.network.fabric import ClusterSpec, LinkSpec
from repro.network.presets import ETHERNET_10G, PCIE_3


class TestLinkSpec:
    def test_beta_is_inverse_bandwidth(self):
        link = LinkSpec("l", latency=1e-5, bandwidth=2e9)
        assert link.beta == pytest.approx(5e-10)

    def test_transfer_time(self):
        link = LinkSpec("l", latency=1e-5, bandwidth=1e9)
        assert link.transfer_time(1e6) == pytest.approx(1e-5 + 1e-3)

    def test_transfer_time_zero_bytes_is_latency(self):
        link = LinkSpec("l", latency=2e-5, bandwidth=1e9)
        assert link.transfer_time(0) == pytest.approx(2e-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", latency=0, bandwidth=1e9).transfer_time(-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", latency=-1e-6, bandwidth=1e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", latency=0, bandwidth=0)

    def test_scaled_link(self):
        doubled = ETHERNET_10G.scaled(bandwidth_factor=2.0)
        assert doubled.bandwidth == pytest.approx(2 * ETHERNET_10G.bandwidth)
        assert doubled.latency == ETHERNET_10G.latency


class TestClusterSpec:
    def _cluster(self, nodes=4, gpus=2) -> ClusterSpec:
        return ClusterSpec(
            name="test", nodes=nodes, gpus_per_node=gpus,
            inter_link=ETHERNET_10G, intra_link=PCIE_3,
        )

    def test_world_size(self):
        assert self._cluster(nodes=4, gpus=2).world_size == 8

    def test_multi_node_flag(self):
        assert self._cluster(nodes=2).multi_node
        assert not self._cluster(nodes=1).multi_node

    def test_flat_alpha_beta_uses_bottleneck(self):
        cluster = self._cluster()
        alpha, beta = cluster.flat_alpha_beta()
        assert alpha == max(ETHERNET_10G.alpha, PCIE_3.alpha)
        assert beta == max(ETHERNET_10G.beta, PCIE_3.beta)

    def test_single_node_uses_intra_link(self):
        cluster = self._cluster(nodes=1)
        alpha, beta = cluster.flat_alpha_beta()
        assert alpha == PCIE_3.alpha
        assert beta == PCIE_3.beta

    def test_with_nodes(self):
        scaled = self._cluster(nodes=4).with_nodes(16)
        assert scaled.world_size == 32
        assert scaled.gpus_per_node == 2

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            self._cluster(nodes=0)
        with pytest.raises(ValueError):
            self._cluster(gpus=0)

    def test_describe_mentions_world_size(self):
        assert "P=8" in self._cluster().describe()
