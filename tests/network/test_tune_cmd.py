"""The ``dear-repro tune`` sweep, artifact, and golden gate."""

import json

import pytest

from repro.cli import main
from repro.network.tune_cmd import (
    TUNE_SCHEMA,
    golden_mismatches,
    run_tune,
    tune_main,
)

# A tiny sweep keeps each test under a second: 4 KiB -> 4 MiB by 16x.
FAST = ["--begin", "4096", "--end", "4194304", "--factor", "16", "--iters", "1"]


class TestRunTune:
    def test_payload_shape(self):
        payload = run_tune(fabrics=("100gbib",), begin=4096, end=2**22,
                           factor=16, iters=1)
        assert payload["schema"] == TUNE_SCHEMA
        body = payload["fabrics"]["100gbib"]
        assert body["world_size"] == 64
        assert body["table"]["schema"] == "dear-tune-table-v1"
        for op in ("reduce_scatter", "all_gather", "all_reduce"):
            rows = body["latency_table"][op]
            assert [row["nbytes"] for row in rows] == [4096, 65536, 1048576]
            for row in rows:
                assert row["speedup"] >= 1.0
        assert payload["harness"]["100gbib"]["min_pass_wall_s"] > 0

    def test_winners_match_hand_computed_crossover(self):
        """Small messages on IB: halving-doubling + LL (log P alpha/4)."""
        payload = run_tune(fabrics=("100gbib",), begin=4096, end=2**22,
                           factor=16, iters=1)
        rows = payload["fabrics"]["100gbib"]["latency_table"]["all_reduce"]
        assert rows[0]["winner"].startswith("halving_doubling/ll/")

    def test_10gbe_winners_are_simple(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        for rows in payload["fabrics"]["10gbe"]["latency_table"].values():
            assert all("/simple/" in row["winner"] for row in rows)

    def test_world_scaling(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1, world=256)
        assert payload["fabrics"]["10gbe"]["world_size"] == 256

    def test_deterministic_across_runs(self):
        kwargs = dict(fabrics=("10gbe",), begin=4096, end=2**22, factor=16,
                      iters=1)
        first, second = run_tune(**kwargs), run_tune(**kwargs)
        del first["harness"], second["harness"]
        assert first == second

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            run_tune(iters=0)
        with pytest.raises(ValueError):
            run_tune(begin=-1.0)


class TestGoldenGate:
    def test_self_comparison_clean(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        assert golden_mismatches(payload, json.loads(json.dumps(payload))) == []

    def test_harness_section_ignored(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        golden = json.loads(json.dumps(payload))
        golden["harness"] = {"10gbe": {"min_pass_wall_s": 42.0}}
        assert golden_mismatches(payload, golden) == []

    def test_table_drift_detected(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        golden = json.loads(json.dumps(payload))
        golden["fabrics"]["10gbe"]["table"]["entries"]["all_reduce"]["12"] = (
            "tree/simple/c1"
        )
        problems = golden_mismatches(payload, golden)
        assert any("selection table" in p for p in problems)

    def test_table_drift_names_first_diverging_entry(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        golden = json.loads(json.dumps(payload))
        entries = golden["fabrics"]["10gbe"]["table"]["entries"]["all_reduce"]
        bucket = sorted(entries, key=int)[0]
        original = entries[bucket]
        entries[bucket] = "tree/simple/c1"
        problems = golden_mismatches(payload, golden)
        message = next(p for p in problems if "selection table" in p)
        assert f"(all_reduce, bucket {bucket}" in message
        assert original in message and "tree/simple/c1" in message

    def test_latency_drift_names_first_diverging_size(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        golden = json.loads(json.dumps(payload))
        row = golden["fabrics"]["10gbe"]["latency_table"]["all_gather"][1]
        row["time_s"] = 123.456
        problems = golden_mismatches(payload, golden)
        message = next(p for p in problems if "latency table" in p)
        assert "10gbe/all_gather" in message
        assert f"nbytes={row['nbytes']}" in message
        assert "time_s" in message and "123.456" in message

    def test_latency_drift_reports_extra_and_missing_rows(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        golden = json.loads(json.dumps(payload))
        dropped = golden["fabrics"]["10gbe"]["latency_table"]["all_reduce"].pop()
        problems = golden_mismatches(payload, golden)
        message = next(p for p in problems if "all_reduce" in p)
        assert f"nbytes={dropped['nbytes']}" in message
        assert "missing from golden" in message

    def test_missing_fabric_detected(self):
        payload = run_tune(fabrics=("10gbe",), begin=4096, end=2**22,
                           factor=16, iters=1)
        golden = json.loads(json.dumps(payload))
        golden["fabrics"]["nvlink-island"] = golden["fabrics"]["10gbe"]
        problems = golden_mismatches(payload, golden)
        assert any("nvlink-island" in p for p in problems)


class TestTuneCli:
    def test_summary_and_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "tuned.json"
        code = tune_main([*FAST, "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tune:10gbe" in out and "tune:100gbib" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == TUNE_SCHEMA
        assert set(payload["fabrics"]) == {"10gbe", "100gbib"}

    def test_golden_check_passes_against_own_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "tuned.json"
        assert tune_main([*FAST, "--output", str(out_path)]) == 0
        assert tune_main([*FAST, "--check-golden", str(out_path)]) == 0
        assert "golden check passed" in capsys.readouterr().out

    def test_golden_mismatch_exits_3(self, capsys, tmp_path):
        out_path = tmp_path / "tuned.json"
        assert tune_main([*FAST, "--output", str(out_path)]) == 0
        golden = json.loads(out_path.read_text())
        golden["params"]["factor"] = 4.0
        out_path.write_text(json.dumps(golden))
        assert tune_main([*FAST, "--check-golden", str(out_path)]) == 3
        assert "golden mismatch" in capsys.readouterr().err

    def test_unreadable_golden_exits_2(self, tmp_path):
        assert tune_main(
            [*FAST, "--check-golden", str(tmp_path / "missing.json")]
        ) == 2

    def test_single_fabric_flag(self, capsys):
        assert tune_main([*FAST, "--fabric", "10gbe"]) == 0
        out = capsys.readouterr().out
        assert "tune:10gbe" in out and "tune:100gbib" not in out

    def test_dispatch_through_main(self, capsys):
        main(["tune", *FAST, "--fabric", "10gbe"])
        assert "tune:10gbe" in capsys.readouterr().out
