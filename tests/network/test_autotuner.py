"""Selection tables: build, lookup, serialise, register, and win."""

import json

import numpy as np
import pytest

from repro.network.autotuner import (
    NO_TABLE,
    Selection,
    SelectionTable,
    TUNE_TABLE_SCHEMA,
    build_selection_table,
    candidate_selections,
    clear_tables,
    default_sweep_sizes,
    ensure_table,
    register_table,
    size_bucket,
    table_for,
)
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.network.protocol import collective_time, governing_link


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_tables()
    yield
    clear_tables()


class TestSizeBuckets:
    def test_powers_of_two(self):
        assert size_bucket(1024.0) == 10
        assert size_bucket(1536.0) == 10
        assert size_bucket(2048.0) == 11

    def test_tiny_sizes_floor_at_zero(self):
        assert size_bucket(0.0) == 0
        assert size_bucket(1.0) == 0


class TestSelection:
    def test_label_round_trip(self):
        sel = Selection("halving_doubling", "ll128", 4)
        assert Selection.from_label(sel.label) == sel

    def test_malformed_label_rejected(self):
        with pytest.raises(ValueError):
            Selection.from_label("ring/simple/4")


class TestCandidates:
    def test_parity_config_comes_first(self):
        cluster = cluster_100gbib()
        first = candidate_selections(cluster)[0]
        link = governing_link(cluster)
        assert first == Selection("ring", "simple", link.channels)

    def test_10gbe_is_simple_only(self):
        protocols = {c.protocol for c in candidate_selections(cluster_10gbe())}
        assert protocols == {"simple"}

    def test_ib_has_all_tiers(self):
        protocols = {c.protocol for c in candidate_selections(cluster_100gbib())}
        assert protocols == {"simple", "ll", "ll128"}

    def test_non_pow2_world_drops_halving_doubling(self):
        cluster = cluster_10gbe(nodes=3, gpus_per_node=4)
        algorithms = {c.algorithm for c in candidate_selections(cluster)}
        assert "halving_doubling" not in algorithms
        assert "hierarchical" in algorithms


class TestTableBuild:
    def test_monotone_protocol_ordering_on_ib(self):
        """LL wins small buckets, Simple/LL128 the large ones (§NCCL)."""
        table = build_selection_table(cluster_100gbib())
        buckets = table.entries["all_reduce"]
        smallest = buckets[min(buckets)]
        largest = buckets[max(buckets)]
        assert smallest.protocol == "ll"
        assert largest.protocol in ("simple", "ll128")
        # Once a bucket leaves LL it never comes back (the crossover is
        # monotone: LL's beta tax grows linearly with size).
        seen_non_ll = False
        for bucket in sorted(buckets):
            if buckets[bucket].protocol != "ll":
                seen_non_ll = True
            elif seen_non_ll:
                pytest.fail(f"LL reappeared at bucket {bucket} after larger tiers")

    def test_10gbe_table_stays_simple(self):
        table = build_selection_table(cluster_10gbe())
        for buckets in table.entries.values():
            assert {sel.protocol for sel in buckets.values()} == {"simple"}

    def test_every_winner_beats_or_ties_ring(self):
        cluster = cluster_100gbib()
        table = build_selection_table(cluster)
        for nbytes in (4096.0, 1e6, 1e8):
            sel = table.lookup("all_reduce", nbytes)
            tuned = collective_time(
                "all_reduce", nbytes, cluster,
                algorithm=sel.algorithm, protocol=sel.protocol,
                channels=sel.channels,
            )
            assert tuned <= collective_time("all_reduce", nbytes, cluster)

    def test_hand_computed_crossover(self):
        """At P=64 on IB the small-message winner is halving-doubling+LL.

        log2(64)=6 rounds of alpha at a quarter latency beat 63 ring
        rounds by construction; at 4 KiB the bandwidth term is noise.
        """
        table = build_selection_table(cluster_100gbib())
        sel = table.lookup("all_reduce", 4096.0)
        assert sel.algorithm == "halving_doubling"
        assert sel.protocol == "ll"

    def test_custom_sizes_and_empty_rejected(self):
        with pytest.raises(ValueError):
            build_selection_table(cluster_10gbe(), sizes=[])
        with pytest.raises(ValueError):
            build_selection_table(cluster_10gbe(), sizes=[-1.0])
        table = build_selection_table(cluster_10gbe(), sizes=[1024.0, 2048.0])
        assert set(table.entries["all_reduce"]) == {10, 11}

    def test_evals_counter(self):
        from repro.telemetry.registry import default_registry

        counter = default_registry().counter(
            "autotuner.evals", "candidate-x-size cost evaluations during table builds"
        )
        before = counter.value(op="all_reduce")
        cluster = cluster_10gbe()
        sizes = default_sweep_sizes()
        build_selection_table(cluster, sizes=sizes)
        gained = counter.value(op="all_reduce") - before
        assert gained == len(candidate_selections(cluster)) * sizes.size


class TestLookup:
    def test_clamps_below_and_above_sweep(self):
        table = build_selection_table(cluster_100gbib())
        buckets = table.entries["all_reduce"]
        assert table.lookup("all_reduce", 16.0) == buckets[min(buckets)]
        assert table.lookup("all_reduce", 2.0**40) == buckets[max(buckets)]

    def test_sparse_buckets_snap_down(self):
        table = SelectionTable(
            "test-link", 8,
            {"all_reduce": {10: Selection("ring", "simple", 1),
                            20: Selection("tree", "simple", 1)}},
        )
        assert table.lookup("all_reduce", float(2**15)).algorithm == "ring"
        assert table.lookup("all_reduce", float(2**20)).algorithm == "tree"

    def test_unknown_op_misses(self):
        table = build_selection_table(cluster_10gbe())
        assert table.lookup("broadcast", 1e6) is None

    def test_all_to_all_tabled(self):
        table = build_selection_table(cluster_10gbe())
        assert table.lookup("all_to_all", 1e6) is not None

    def test_lookup_counters(self):
        from repro.telemetry.registry import default_registry

        lookups = default_registry().counter(
            "autotuner.lookups", "selection-table consultations"
        )
        hits_before = lookups.value(hit="yes")
        misses_before = lookups.value(hit="no")
        table = build_selection_table(cluster_10gbe())
        table.lookup("all_reduce", 1e6)
        table.lookup("broadcast", 1e6)
        assert lookups.value(hit="yes") - hits_before == 1
        assert lookups.value(hit="no") - misses_before == 1

    def test_no_table_always_misses(self):
        assert NO_TABLE.lookup("all_reduce", 1e6) is None


class TestSerialisation:
    def test_json_round_trip(self, tmp_path):
        table = build_selection_table(cluster_100gbib())
        path = table.save(tmp_path / "table.json")
        loaded = SelectionTable.load(path)
        assert loaded.entries == table.entries
        assert loaded.link_name == table.link_name
        assert loaded.world_size == table.world_size
        payload = json.loads(path.read_text())
        assert payload["schema"] == TUNE_TABLE_SCHEMA

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            SelectionTable.from_payload({"schema": "dear-tune-table-v0"})

    def test_payload_tuple_round_trip(self):
        table = build_selection_table(cluster_100gbib())
        clone = SelectionTable.from_payload_tuple(table.payload_tuple())
        assert clone.entries == table.entries
        assert clone.payload_tuple() == table.payload_tuple()


class TestRegistry:
    def test_register_and_lookup(self):
        cluster = cluster_100gbib()
        assert table_for(cluster) is None
        table = register_table(build_selection_table(cluster))
        assert table_for(cluster) is table
        clear_tables()
        assert table_for(cluster) is None

    def test_ensure_builds_once(self):
        cluster = cluster_10gbe()
        table = ensure_table(cluster)
        assert ensure_table(cluster) is table

    def test_keyed_by_link_and_world(self):
        register_table(build_selection_table(cluster_10gbe()))
        assert table_for(cluster_100gbib()) is None
        assert table_for(cluster_10gbe(nodes=32)) is None


class TestAutoAlgorithm:
    def test_auto_without_table_is_ring_bitwise(self):
        cluster = cluster_10gbe()
        ring = CollectiveTimeModel(cluster)
        auto = CollectiveTimeModel(cluster, algorithm="auto")
        for nbytes in (1.0, 1e3, 25e6, 1e9):
            assert auto.reduce_scatter(nbytes) == ring.reduce_scatter(nbytes)
            assert auto.all_gather(nbytes) == ring.all_gather(nbytes)
            assert auto.all_reduce(nbytes) == ring.all_reduce(nbytes)

    def test_auto_with_table_never_slower(self):
        cluster = cluster_100gbib()
        table = build_selection_table(cluster)
        ring = CollectiveTimeModel(cluster)
        auto = CollectiveTimeModel(cluster, algorithm="auto", table=table)
        for nbytes in (1e3, 1e5, 25e6, 1e9):
            assert auto.all_reduce(nbytes) <= ring.all_reduce(nbytes)

    def test_auto_finds_registered_table(self):
        cluster = cluster_100gbib()
        table = register_table(build_selection_table(cluster))
        auto = CollectiveTimeModel(cluster, algorithm="auto")
        assert auto._table is table
        assert "auto[" in auto.describe()

    def test_auto_sweep_matches_scalar(self):
        cluster = cluster_100gbib()
        table = build_selection_table(cluster)
        auto = CollectiveTimeModel(cluster, algorithm="auto", table=table)
        sizes = np.array([1e3, 1e5, 25e6, 1e9])
        out = auto.sweep("all_reduce", sizes)
        for nbytes, t in zip(sizes, out):
            assert auto.all_reduce(float(nbytes)) == t

    def test_auto_no_table_sweep_matches_ring(self):
        cluster = cluster_10gbe()
        auto = CollectiveTimeModel(cluster, algorithm="auto")
        ring = CollectiveTimeModel(cluster)
        sizes = np.array([1e3, 25e6])
        assert np.array_equal(auto.sweep("all_gather", sizes),
                              ring.sweep("all_gather", sizes))
