"""Differential pin: tuning off means NOTHING moves, bit-for-bit.

Two guarantees the whole PR rests on:

- ``algorithm="auto"`` with no table behaves exactly like the plain
  ring model — every scheduler's span timestamps are bit-identical and
  the exported Chrome traces are byte-identical;
- the protocol-aware path at the parity config (ring / Simple /
  calibrated channels / one chunk) is the plain scalar path.
"""

import pytest

from repro.models import get_model
from repro.network.autotuner import build_selection_table, clear_tables
from repro.network.presets import cluster_10gbe
from repro.schedulers.base import SCHEDULER_NAMES, simulate


@pytest.fixture(autouse=True)
def _no_ambient_tables():
    clear_tables()
    yield
    clear_tables()


def _spans(result):
    return [
        (span.name, span.category, span.start, span.end)
        for span in result.tracer.spans
    ]


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_auto_without_table_is_bit_identical(scheduler):
    model = get_model("resnet50")
    cluster = cluster_10gbe()
    ring = simulate(scheduler, model, cluster, iterations=3)
    auto = simulate(scheduler, model, cluster, iterations=3, algorithm="auto")
    assert auto.iteration_time == ring.iteration_time
    assert auto.iteration_times == ring.iteration_times
    assert _spans(auto) == _spans(ring)
    assert auto.tracer.to_chrome_trace() == ring.tracer.to_chrome_trace()


@pytest.mark.parametrize("scheduler", ("dear", "horovod"))
def test_auto_with_table_changes_results_on_ib(scheduler):
    """The converse guard: with a table loaded, auto is NOT ring."""
    from repro.network.presets import cluster_100gbib

    model = get_model("resnet50")
    cluster = cluster_100gbib()
    table = build_selection_table(cluster)
    ring = simulate(scheduler, model, cluster, iterations=3)
    auto = simulate(scheduler, model, cluster, iterations=3,
                    algorithm="auto", tuned_table=table)
    assert auto.iteration_time < ring.iteration_time


def test_registered_table_is_picked_up_by_simulate():
    from repro.network.autotuner import register_table
    from repro.network.presets import cluster_100gbib

    model = get_model("resnet50")
    cluster = cluster_100gbib()
    ring = simulate("dear", model, cluster, iterations=3)
    register_table(build_selection_table(cluster))
    auto = simulate("dear", model, cluster, iterations=3, algorithm="auto")
    assert auto.iteration_time < ring.iteration_time


def test_runspec_pins_untuned_against_ambient_tables():
    """A spec snapshotted without a table must ignore later registration."""
    from repro.network.autotuner import register_table
    from repro.network.presets import cluster_100gbib
    from repro.runner.spec import RunSpec

    cluster = cluster_100gbib()
    spec = RunSpec.create("dear", "resnet50", cluster, algorithm="auto")
    assert spec.tuned_table is None
    baseline = spec.run()
    register_table(build_selection_table(cluster))
    assert spec.run().iteration_time == baseline.iteration_time


def test_runspec_snapshots_registered_table():
    from repro.network.autotuner import register_table
    from repro.network.presets import cluster_100gbib
    from repro.runner.spec import RunSpec

    cluster = cluster_100gbib()
    register_table(build_selection_table(cluster))
    spec = RunSpec.create("dear", "resnet50", cluster, algorithm="auto")
    assert spec.tuned_table is not None
    tuned = spec.run()
    clear_tables()
    # The embedded table keeps working with the registry empty.
    assert spec.run().iteration_time == tuned.iteration_time
    ring = RunSpec.create("dear", "resnet50", cluster).run()
    assert tuned.iteration_time < ring.iteration_time


def test_tuned_table_changes_fingerprint():
    from repro.network.presets import cluster_100gbib
    from repro.runner.spec import RunSpec

    cluster = cluster_100gbib()
    table = build_selection_table(cluster)
    plain = RunSpec.create("dear", "resnet50", cluster, algorithm="auto")
    tuned = RunSpec.create("dear", "resnet50", cluster, algorithm="auto",
                           tuned_table=table)
    assert plain.fingerprint != tuned.fingerprint
