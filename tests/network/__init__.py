"""Test package."""
