"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.models.layers import ModelBuilder, ModelSpec
from repro.models.profiles import CALIBRATED_ITERATION_COMPUTE, TimingModel
from repro.models.zoo import get_model
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.runner.cache import reset_default_cache

# The unit-test model gets a calibration entry so `simulate()` works on
# it without an explicit iteration_compute override in every test.
# (The dict is only read at simulate() time, never at import time.)
CALIBRATED_ITERATION_COMPUTE.setdefault("tiny", 0.03)


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the runner's result cache at a per-session scratch dir.

    Keeps test runs from seeding (or being seeded by) the developer's
    ``.dear-cache/`` in the working tree.
    """
    import os

    previous = os.environ.get("DEAR_CACHE_DIR")
    os.environ["DEAR_CACHE_DIR"] = str(tmp_path_factory.mktemp("dear-cache"))
    reset_default_cache()
    yield
    if previous is None:
        os.environ.pop("DEAR_CACHE_DIR", None)
    else:
        os.environ["DEAR_CACHE_DIR"] = previous
    reset_default_cache()


def build_tiny_model(num_blocks: int = 4, width: int = 1000) -> ModelSpec:
    """A small synthetic CNN-ish model for fast scheduler tests.

    Each block is a conv-like layer (one ``width * 100`` element tensor)
    followed by a bn-like layer (two ``width``-element tensors).
    """
    builder = ModelBuilder(
        name="tiny", display_name="Tiny", default_batch_size=8,
        sample_description="unit-test sample",
    )
    for index in range(num_blocks):
        builder.add_layer(
            f"block{index}.conv", "conv", [("weight", width * 100)],
            flops=1e6 * (index + 1),
        )
        builder.add_layer(
            f"block{index}.bn", "bn", [("weight", width), ("bias", width)],
            flops=1e3,
        )
    builder.fc("head", width, 10)
    return builder.build()


@pytest.fixture(scope="session")
def tiny_model() -> ModelSpec:
    return build_tiny_model()


@pytest.fixture(scope="session")
def tiny_timing(tiny_model) -> TimingModel:
    return TimingModel.for_model(tiny_model, iteration_compute=0.03)


@pytest.fixture(scope="session")
def ethernet_cluster():
    return cluster_10gbe()


@pytest.fixture(scope="session")
def infiniband_cluster():
    return cluster_100gbib()


@pytest.fixture(scope="session")
def ethernet_cost(ethernet_cluster) -> CollectiveTimeModel:
    return CollectiveTimeModel(ethernet_cluster)


@pytest.fixture(scope="session")
def resnet50():
    return get_model("resnet50")


@pytest.fixture(scope="session")
def bert_base():
    return get_model("bert_base")
