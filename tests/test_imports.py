"""Package hygiene: every module imports, every __all__ name exists."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_every_subpackage_has_docstring():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


def test_public_entry_points():
    """The README's import lines must keep working verbatim."""
    import repro.core as dear
    from repro.models import get_model                      # noqa: F401
    from repro.network import cluster_10gbe                 # noqa: F401
    from repro.schedulers import simulate                   # noqa: F401

    assert callable(dear.init)
    assert hasattr(dear, "DistOptim")
