"""Tests for the trace-derived Fig. 8 breakdown."""

import pytest

from repro.schedulers.base import simulate
from repro.sim.trace import Tracer
from repro.telemetry.breakdown import (
    CategoryBreakdown,
    exposed_in_window,
    format_breakdown_table,
    steady_state_window,
    total_in_window,
    trace_breakdown,
)


def _two_iteration_tracer() -> Tracer:
    """Two iterations: ff 0..1, bp 1..3, ar 2..5; repeat offset by 6."""
    tracer = Tracer()
    for iteration, base in ((0, 0.0), (1, 6.0)):
        tracer.record(f"ff.{iteration}.0", "ff", "gpu.compute", base, base + 1.0)
        tracer.record(f"bp.{iteration}.0", "bp", "gpu.compute", base + 1.0, base + 3.0)
        tracer.record(
            f"all_reduce.{iteration}.g0", "comm.ar", "gpu.comm",
            base + 2.0, base + 5.0,
        )
    return tracer


class TestSteadyStateWindow:
    def test_last_two_ff_starts(self):
        assert steady_state_window(_two_iteration_tracer()) == (0.0, 6.0)

    def test_single_iteration_raises(self):
        tracer = Tracer()
        tracer.record("ff.0.0", "ff", "gpu", 0.0, 1.0)
        with pytest.raises(ValueError, match="fewer than two"):
            steady_state_window(tracer)

    def test_ignores_non_first_layers_and_other_categories(self):
        tracer = _two_iteration_tracer()
        tracer.record("ff.2.1", "ff", "gpu.compute", 12.0, 13.0)  # layer 1
        tracer.record("ff.9.0", "bp", "gpu.compute", 20.0, 21.0)  # wrong category
        assert steady_state_window(tracer) == (0.0, 6.0)

    def test_unordered_span_list(self):
        tracer = Tracer()
        tracer.record("ff.1.0", "ff", "gpu", 6.0, 7.0)
        tracer.record("ff.0.0", "ff", "gpu", 0.0, 1.0)
        assert steady_state_window(tracer) == (0.0, 6.0)


class TestWindowArithmetic:
    def test_exposed_subtracts_compute(self):
        tracer = _two_iteration_tracer()
        # In window (0, 6): ar covers 2..5, bp covers 1..3 -> exposed 3..5.
        exposed = exposed_in_window(tracer, ("comm.ar",), (0.0, 6.0))
        assert exposed == pytest.approx(2.0)

    def test_exactly_touching_compute_hides_nothing_extra(self):
        tracer = Tracer()
        tracer.record("ff.0.0", "ff", "gpu", 0.0, 1.0)
        tracer.record("c", "comm.ar", "net", 1.0, 2.0)  # touches ff at t=1
        assert exposed_in_window(tracer, ("comm.ar",), (0.0, 2.0)) == pytest.approx(1.0)

    def test_zero_length_span_contributes_nothing(self):
        tracer = Tracer()
        tracer.record("c", "comm.ar", "net", 1.0, 1.0)
        assert total_in_window(tracer, ("comm.ar",), (0.0, 2.0)) == 0.0
        assert exposed_in_window(tracer, ("comm.ar",), (0.0, 2.0)) == 0.0

    def test_window_clipping(self):
        tracer = _two_iteration_tracer()
        # ar of iteration 0 spans 2..5; clip to (4, 6).
        assert total_in_window(tracer, ("comm.ar",), (4.0, 6.0)) == pytest.approx(1.0)


class TestTraceBreakdown:
    def test_rows_and_comm_all(self):
        rows = trace_breakdown(_two_iteration_tracer())
        by_category = {row.category: row for row in rows}
        assert by_category["ff"].total == pytest.approx(1.0)
        assert by_category["ff"].exposed == by_category["ff"].total
        assert by_category["bp"].hidden == 0.0
        assert by_category["comm.ar"].total == pytest.approx(3.0)
        assert by_category["comm.ar"].exposed == pytest.approx(2.0)
        assert by_category["comm.ar"].hidden == pytest.approx(1.0)
        assert by_category["comm (all)"].exposed == pytest.approx(2.0)

    def test_zero_total_categories_skipped(self):
        tracer = _two_iteration_tracer()
        tracer.record("noop", "comm.rs", "gpu.comm", 20.0, 21.0)  # outside window
        rows = trace_breakdown(tracer, window=(0.0, 6.0))
        assert "comm.rs" not in {row.category for row in rows}

    def test_hidden_property(self):
        row = CategoryBreakdown("comm.ar", total=3.0, exposed=1.0)
        assert row.hidden == pytest.approx(2.0)

    @pytest.mark.parametrize("scheduler,options", [
        ("serial", {}),
        ("wfbp", {"buffer_bytes": 25e6}),
        ("dear", {"fusion": "buffer", "buffer_bytes": 25e6}),
        ("zero", {}),
    ])
    def test_exposed_matches_schedule_result_exactly(
        self, scheduler, options, tiny_model, ethernet_cluster
    ):
        """The table's comm (all) row IS ScheduleResult.exposed_comm.

        Not approximately: the breakdown replays the simulator's own
        interval arithmetic on the same floats, so the values must be
        identical bit for bit.
        """
        result = simulate(
            scheduler, tiny_model, ethernet_cluster,
            iteration_compute=0.03, **options,
        )
        window = steady_state_window(result.tracer)
        rows = trace_breakdown(result.tracer, window)
        comm_all = next(row for row in rows if row.category == "comm (all)")
        assert comm_all.exposed == result.exposed_comm
        rs = [row for row in rows if row.category == "comm.rs"]
        if rs:
            assert rs[0].exposed == result.exposed_rs
        ag = [row for row in rows if row.category == "comm.ag"]
        if ag:
            assert ag[0].exposed == result.exposed_ag


class TestFormatTable:
    def test_table_contains_categories_and_window(self):
        tracer = _two_iteration_tracer()
        window = steady_state_window(tracer)
        text = format_breakdown_table(trace_breakdown(tracer, window), window)
        assert "steady-state window" in text
        assert "comm (all)" in text
        assert "exposed_ms" in text
        # ar total is 3000 ms in-window? No: 3.0 s -> 3000.000 ms.
        assert "3000.000" in text

    def test_zero_span_window_no_division_error(self):
        rows = [CategoryBreakdown("ff", 0.0, 0.0)]
        text = format_breakdown_table(rows, (1.0, 1.0))
        assert "0.0%" in text
