"""Unit tests for the zero-dependency metrics registry."""

import json

import pytest

from repro.telemetry.registry import (
    MetricsRegistry,
    NullRegistry,
    default_registry,
    reset_default_registry,
    set_default_registry,
    telemetry_enabled,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("events", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_label_sets_are_independent(self, registry):
        counter = registry.counter("bytes")
        counter.inc(10, rank=0)
        counter.inc(20, rank=1)
        assert counter.value(rank=0) == 10
        assert counter.value(rank=1) == 20
        assert counter.value(rank=2) == 0

    def test_bound_child_is_cached(self, registry):
        counter = registry.counter("hits")
        assert counter.labels(op="rs") is counter.labels(op="rs")
        assert counter.labels(op="rs") is not counter.labels(op="ag")

    def test_label_order_is_canonical(self, registry):
        counter = registry.counter("c")
        counter.inc(1, a=1, b=2)
        counter.inc(1, b=2, a=1)
        assert counter.value(a=1, b=2) == 2


class TestGauge:
    def test_set_overwrites(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(4.0)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_inc_dec(self, registry):
        gauge = registry.gauge("level")
        gauge.labels().inc(5.0)
        gauge.labels().dec(2.0)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_observe_statistics(self, registry):
        histogram = registry.histogram("sizes", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 4
        assert child.total == pytest.approx(555.5)
        assert child.min == 0.5
        assert child.max == 500.0
        assert child.mean == pytest.approx(555.5 / 4)
        assert child.counts == [1, 1, 1, 1]

    def test_snapshot_has_inf_bucket(self, registry):
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(2.0)
        snap = histogram.snapshot()
        assert snap["values"][0]["buckets"][-1] == {"le": "+Inf", "count": 1}


class TestSeries:
    def test_append_and_points(self, registry):
        series = registry.series("best")
        series.append(1, 0.5, tuner="bo")
        series.append(2, 0.7, tuner="bo")
        assert series.points(tuner="bo") == [(1.0, 0.5), (2.0, 0.7)]
        assert series.points(tuner="grid") == []


class TestRegistry:
    def test_same_name_returns_same_family(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("metric")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("metric")

    def test_snapshot_is_json_ready_and_sorted(self, registry):
        registry.counter("b.second").inc(1, k="v")
        registry.gauge("a.first").set(2.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.first", "b.second"]
        payload = json.loads(registry.to_json())
        assert payload["b.second"]["kind"] == "counter"
        assert payload["b.second"]["values"] == [
            {"labels": {"k": "v"}, "value": 1.0}
        ]

    def test_reset_drops_families(self, registry):
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestNullRegistry:
    def test_discards_everything(self):
        null = NullRegistry()
        assert null.enabled is False
        null.counter("c").inc(5, any_label="x")
        null.gauge("g").set(1.0)
        null.histogram("h").observe(2.0)
        null.series("s").append(1, 2)
        assert null.counter("c").value() == 0.0
        assert null.snapshot() == {}


class TestDefaultRegistry:
    @pytest.fixture(autouse=True)
    def _fresh_default(self):
        reset_default_registry()
        yield
        reset_default_registry()

    def test_kill_switch_env_values(self, monkeypatch):
        for value, expected in [
            ("1", True), ("on", True), ("yes", True),
            ("0", False), ("off", False), ("FALSE", False), ("no", False),
        ]:
            monkeypatch.setenv("DEAR_TELEMETRY", value)
            assert telemetry_enabled() is expected
        monkeypatch.delenv("DEAR_TELEMETRY")
        assert telemetry_enabled() is True

    def test_disabled_returns_null(self, monkeypatch):
        monkeypatch.setenv("DEAR_TELEMETRY", "0")
        assert isinstance(default_registry(), NullRegistry)

    def test_enabled_is_process_wide_singleton(self, monkeypatch):
        monkeypatch.delenv("DEAR_TELEMETRY", raising=False)
        first = default_registry()
        assert first is default_registry()
        assert not isinstance(first, NullRegistry)

    def test_set_default_registry_replaces(self, monkeypatch):
        monkeypatch.delenv("DEAR_TELEMETRY", raising=False)
        mine = MetricsRegistry()
        set_default_registry(mine)
        assert default_registry() is mine


class TestInstrumentedStack:
    """End-to-end: a simulation publishes into an installed registry."""

    @pytest.fixture(autouse=True)
    def _scoped_registry(self):
        registry = MetricsRegistry()
        set_default_registry(registry)
        yield registry
        reset_default_registry()

    def test_simulation_publishes_run_and_stream_metrics(
        self, _scoped_registry, tiny_timing, ethernet_cluster
    ):
        from repro.network.cost_model import CollectiveTimeModel
        from repro.schedulers.base import get_scheduler

        # Build the cost model *after* the scoped registry is installed:
        # it binds its counters at construction time.
        cost = CollectiveTimeModel(ethernet_cluster)
        get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            tiny_timing, cost
        )
        snapshot = _scoped_registry.snapshot()
        assert snapshot["run.count"]["values"][0]["value"] == 1.0
        assert "sim.runs" in snapshot
        assert "sim.stream.jobs" in snapshot
        assert "costmodel.queries" in snapshot
        labels = snapshot["run.count"]["values"][0]["labels"]
        assert labels["scheduler"] == "dear"

    def test_cost_model_memoization_is_observable(self, _scoped_registry,
                                                  ethernet_cluster):
        from repro.network.cost_model import CollectiveTimeModel

        model = CollectiveTimeModel(ethernet_cluster)
        model.reduce_scatter(1e6)
        model.reduce_scatter(1e6)
        model.reduce_scatter(2e6)
        queries = _scoped_registry.counter("costmodel.queries")
        hits = _scoped_registry.counter("costmodel.memo_hits")
        assert queries.value(op="rs", algorithm="ring") == 3
        assert hits.value(op="rs", algorithm="ring") == 1

    def test_transport_publishes_per_rank_bytes(self, _scoped_registry):
        import numpy as np

        from repro.collectives.transport import Transport

        transport = Transport(2)
        payload = np.zeros(8)
        transport.send(0, 1, payload)
        transport.recv(0, 1)
        snapshot = _scoped_registry.snapshot()
        assert snapshot["transport.messages"]["values"] == [
            {"labels": {"rank": "0"}, "value": 1.0},
            {"labels": {"rank": "1"}, "value": 0.0},
        ]
        assert snapshot["transport.bytes"]["values"][0]["value"] == payload.nbytes

    def test_tuners_publish_best_so_far(self, _scoped_registry):
        from repro.bayesopt.search import GridSearch

        tuner = GridSearch(1e6, 1e8, points=4)
        for y in (0.3, 0.9, 0.5):
            tuner.observe(tuner.suggest(), y)
        evals = _scoped_registry.counter("bayesopt.evals")
        series = _scoped_registry.series("bayesopt.best_so_far")
        assert evals.value(tuner="GridSearch") == 3
        assert series.points(tuner="GridSearch") == [
            (1.0, 0.3), (2.0, 0.9), (3.0, 0.9),
        ]
