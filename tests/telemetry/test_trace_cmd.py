"""End-to-end tests of the ``dear-repro trace`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.telemetry.registry import reset_default_registry


@pytest.fixture()
def trace_env(tmp_path, monkeypatch):
    """Scratch cache + registry isolation for a trace CLI invocation."""
    from repro.runner.cache import reset_default_cache

    monkeypatch.setenv("DEAR_CACHE_DIR", str(tmp_path / "cache"))
    reset_default_cache()
    yield tmp_path
    reset_default_cache()
    reset_default_registry()


def _run(trace_env, *extra) -> int:
    args = [
        "trace", "--scheduler", "dear", "--model", "resnet50",
        "--fabric", "10gbe", "--output", str(trace_env), *extra,
    ]
    return main(args)


class TestTraceCli:
    def test_acceptance_configuration(self, trace_env, capsys):
        assert _run(trace_env) == 0
        out = capsys.readouterr().out

        # Terminal breakdown with the Fig. 8 decomposition.
        assert "steady-state window" in out
        assert "comm (all)" in out
        assert "exposed-comm cross-check [OK]" in out

        trace_path = trace_env / "trace_dear_resnet50_10gbe.json"
        metrics_path = trace_env / "metrics_dear_resnet50_10gbe.json"
        assert trace_path.exists() and metrics_path.exists()

        # Perfetto-loadable: valid JSON, counter tracks, flow events,
        # adjacent-row metadata.
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        phases = {event["ph"] for event in events}
        assert {"X", "M", "C"} <= phases
        assert {"s", "f"} <= phases  # gradient-lifecycle flow arrows
        counter_names = {e["name"] for e in events if e["ph"] == "C"}
        assert "comm.bytes_in_flight" in counter_names
        assert "comm.queue_depth" in counter_names
        sort_metas = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_sort_index"
        ]
        assert sort_metas

        # Metrics snapshot: transport byte counters + runner cache stats.
        metrics = json.loads(metrics_path.read_text())
        assert "transport.bytes" in metrics
        assert metrics["transport.bytes"]["values"]
        assert "runner.cache.hits" in metrics
        assert "runner.cache.misses" in metrics
        assert metrics["runner.cache.hits"]["values"][0]["value"] >= 1.0
        assert "run.exposed_comm_seconds" in metrics
        assert "costmodel.queries" in metrics

    def test_wfbp_against_dear(self, trace_env, capsys):
        args = [
            "trace", "--scheduler", "wfbp", "--model", "resnet50",
            "--fabric", "10gbe", "--buffer-bytes", "25e6",
            "--output", str(trace_env),
        ]
        assert main(args) == 0
        assert (trace_env / "trace_wfbp_resnet50_10gbe.json").exists()
        out = capsys.readouterr().out
        assert "comm.ar" in out  # WFBP uses fused all-reduce

    def test_unknown_model_is_usage_error(self, trace_env, capsys):
        assert _run(trace_env, "--model", "nonexistent-model") == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_scheduler_is_usage_error(self, trace_env, capsys):
        assert _run(trace_env, "--scheduler", "warpdrive") == 2
        assert "error" in capsys.readouterr().err

    def test_fusion_none_runs(self, trace_env, capsys):
        assert _run(trace_env, "--fusion", "none") == 0
        assert "exposed-comm cross-check [OK]" in capsys.readouterr().out

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--help"])
        assert excinfo.value.code == 0
