"""DAG differential suite: every engine replays workloads bit-identically.

The single-rank fast path, the rank-axis multirank replay, and the
config-axis batched runner must reproduce the event kernel on
non-all-reduce workload DAGs exactly as they do on the layer-wise
schedule: identical timestamps (same IEEE float operations in the same
order), hence byte-identical exported Perfetto traces — not merely
equivalent within tolerance.
"""

from __future__ import annotations

import pytest

from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_10gbe
from repro.runner.batched import run_batched
from repro.runner.spec import RunSpec
from repro.schedulers.base import get_scheduler
from repro.schedulers.multirank import POLICIES, simulate_heterogeneous
from repro.workloads import WORKLOAD_NAMES
from tests.conftest import build_tiny_model

ITERATIONS = 4

#: Every registered scheduler that supports the vectorized replay.
FAST_SCHEDULERS = ("serial", "wfbp", "ddp", "horovod", "mg_wfbp", "dear", "zero")

#: The non-layer-wise DAGs (layerwise is covered by the classic suite).
DAG_WORKLOADS = ("moe", "dlrm", "llm3d")

SMALL_CLUSTER = cluster_10gbe(nodes=2, gpus_per_node=2)  # 4 ranks, fast tests


@pytest.fixture(scope="module")
def timing():
    return TimingModel.for_model(build_tiny_model(), iteration_compute=0.03)


@pytest.fixture(scope="module")
def cost():
    return CollectiveTimeModel(cluster_10gbe())


def _run_both(scheduler_name, timing, cost, workload, monkeypatch, **options):
    monkeypatch.setenv("DEAR_FASTPATH", "1")
    fast = get_scheduler(scheduler_name, **options).run(
        timing, cost, iterations=ITERATIONS, workload=workload
    )
    monkeypatch.setenv("DEAR_FASTPATH", "0")
    slow = get_scheduler(scheduler_name, **options).run(
        timing, cost, iterations=ITERATIONS, workload=workload
    )
    return fast, slow


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("scheduler", FAST_SCHEDULERS)
class TestSingleRankDifferential:
    def test_bit_identical_timestamps(self, scheduler, workload, timing, cost,
                                      monkeypatch):
        fast, slow = _run_both(scheduler, timing, cost, workload, monkeypatch)
        assert fast.iteration_times == slow.iteration_times
        assert fast.exposed_comm == slow.exposed_comm

    def test_byte_identical_perfetto_trace(self, scheduler, workload, timing,
                                           cost, monkeypatch):
        fast, slow = _run_both(scheduler, timing, cost, workload, monkeypatch)
        assert fast.tracer.to_chrome_trace() == slow.tracer.to_chrome_trace()


@pytest.mark.parametrize("workload", DAG_WORKLOADS)
def test_bytescheduler_event_only(workload, timing, cost, monkeypatch):
    # No fast path to compare against: the run must simply be stable
    # and carry the workload tag.
    monkeypatch.setenv("DEAR_FASTPATH", "1")  # ignored: supports_fast_path=False
    result = get_scheduler("bytescheduler").run(
        timing, cost, iterations=ITERATIONS, workload=workload
    )
    assert result.iteration_time > 0
    assert result.extras["workload"] == workload


@pytest.mark.parametrize("workload", DAG_WORKLOADS)
@pytest.mark.parametrize("policy", POLICIES)
def test_multirank_differential(policy, workload, monkeypatch):
    model = build_tiny_model()
    scales = [1.0, 1.15, 1.0, 1.4]
    fast = simulate_heterogeneous(
        policy, model, SMALL_CLUSTER, scales, iterations=ITERATIONS,
        iteration_compute=0.03, fastpath=True, collapse=False, trace=True,
        workload=workload,
    )
    slow = simulate_heterogeneous(
        policy, model, SMALL_CLUSTER, scales, iterations=ITERATIONS,
        iteration_compute=0.03, fastpath=False, collapse=False, trace=True,
        workload=workload,
    )
    assert fast.extras["engine"] == "multirank-fastpath"
    assert slow.extras["engine"] == "multirank-event"
    assert fast.iteration_times == slow.iteration_times
    assert fast.tracer.to_chrome_trace() == slow.tracer.to_chrome_trace()


@pytest.mark.parametrize("workload", DAG_WORKLOADS)
def test_batched_matches_direct(workload, tiny_model):
    specs = [
        RunSpec.create(scheduler, tiny_model, SMALL_CLUSTER,
                       iterations=ITERATIONS, workload=workload,
                       **({"fusion": "buffer"} if scheduler == "dear" else {}))
        for scheduler in ("wfbp", "dear", "zero")
    ]
    batched = run_batched(specs)
    for spec, entry in zip(specs, batched):
        assert entry is not None, spec.scheduler
        assert entry[0].iteration_times == spec.run().iteration_times


def test_workload_tag_in_extras(timing, cost):
    result = get_scheduler("wfbp").run(
        timing, cost, iterations=ITERATIONS, workload="moe"
    )
    assert result.extras["workload"] == "moe"
    plain = get_scheduler("wfbp").run(timing, cost, iterations=ITERATIONS)
    assert "workload" not in plain.extras
