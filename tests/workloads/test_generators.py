"""Generator catalog: every workload builds, validates, and has the
structure its docstring promises."""

import pytest

from repro.models.profiles import TimingModel
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_10gbe
from repro.workloads import WORKLOAD_NAMES, build_workload
from repro.workloads.generators import _llm3d_axes


@pytest.fixture(scope="module")
def timing():
    from tests.conftest import build_tiny_model

    return TimingModel.for_model(build_tiny_model(), iteration_compute=0.03)


@pytest.fixture(scope="module")
def cluster():
    return cluster_10gbe()


class TestRegistry:
    def test_names(self):
        assert WORKLOAD_NAMES == ("layerwise", "moe", "dlrm", "llm3d")

    def test_unknown_name_rejected(self, timing, cluster):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("resnet", timing, cluster)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic(self, name, timing, cluster):
        # Generators are pure functions of (timing, cluster): the cache
        # and the fingerprint key on the *name* alone.
        assert build_workload(name, timing, cluster) == \
            build_workload(name, timing, cluster)


class TestLayerwise:
    def test_matches_model_structure(self, timing, cluster):
        wl = build_workload("layerwise", timing, cluster)
        layers = timing.model.num_layers
        assert len(wl.sync_indices) == layers
        assert wl.sync_bytes == pytest.approx(timing.model.gradient_bytes)
        computes = [n for n in wl.nodes if n.is_compute]
        assert len(computes) == 2 * layers  # ff + bp per layer
        # Every ff layer consumes its own sync from the previous
        # iteration — the WFBP/DeAR gating structure.
        for sync_index in wl.sync_indices:
            assert wl.consumers_of(sync_index)


class TestMoE:
    def test_alltoall_on_critical_path(self, timing, cluster):
        wl = build_workload("moe", timing, cluster)
        a2a = [n for n in wl.nodes if n.op == "all_to_all"]
        # dispatch + combine, forward and backward, per block.
        assert len(a2a) == 4 * 8
        assert all(not n.sync for n in a2a)
        assert wl.sync_indices  # the dense gradients still sync

    def test_sync_bytes_are_dense_fraction(self, timing, cluster):
        wl = build_workload("moe", timing, cluster)
        assert 0 < wl.sync_bytes < timing.model.gradient_bytes


class TestDLRM:
    def test_embedding_exchange_is_alltoallv(self, timing, cluster):
        wl = build_workload("dlrm", timing, cluster)
        allv = [n for n in wl.nodes if n.op == "all_to_allv"]
        assert len(allv) == 2  # forward lookup + backward gradient push
        # Embedding gradients stay local (the model-parallel shard),
        # only the dense towers sync.
        assert wl.sync_bytes < timing.model.gradient_bytes


class TestLLM3D:
    def test_axes_fold_to_world(self, cluster):
        for nodes in (1, 2, 4, 16, 128):
            world = nodes * cluster.gpus_per_node
            tp, pp, dp = _llm3d_axes(cluster.with_nodes(nodes))
            assert tp * pp * dp == world

    def test_subgroup_collectives(self, timing, cluster):
        wl = build_workload("llm3d", timing, cluster)
        tp, pp, dp = _llm3d_axes(cluster)
        tp_ars = [n for n in wl.nodes
                  if n.op == "all_reduce" and not n.sync]
        assert tp_ars and all(n.peers == tp for n in tp_ars)
        p2p = [n for n in wl.nodes if n.op == "send_recv"]
        assert p2p  # pipeline activations/gradients
        for n in (node for node in wl.nodes if node.sync):
            assert n.peers == (dp if dp > 1 else 0)
