"""Workload IR validation: the invariants every generator relies on."""

import pytest

from repro.workloads.ir import (
    COLLECTIVE_NODE_OPS,
    COMPUTE_OP,
    Workload,
    WorkloadNode,
)


def compute(name, duration=1e-3, **kwargs):
    return WorkloadNode(name=name, op=COMPUTE_OP, duration=duration, **kwargs)


def sync(name, nbytes=1e6, **kwargs):
    return WorkloadNode(name=name, op="all_reduce", nbytes=nbytes, sync=True,
                        **kwargs)


class TestWorkloadNode:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            WorkloadNode(name="x", op="broadcast")

    def test_compute_validation(self):
        with pytest.raises(ValueError, match="negative duration"):
            compute("x", duration=-1.0)
        with pytest.raises(ValueError, match="carry no bytes"):
            compute("x", nbytes=8.0)
        with pytest.raises(ValueError, match="cannot be sync"):
            WorkloadNode(name="x", op=COMPUTE_OP, duration=1.0, sync=True)

    def test_collective_validation(self):
        with pytest.raises(ValueError, match="negative nbytes"):
            WorkloadNode(name="x", op="all_to_all", nbytes=-1.0)
        with pytest.raises(ValueError, match="cost model"):
            WorkloadNode(name="x", op="all_gather", nbytes=8.0, duration=1.0)

    def test_sync_only_on_all_reduce(self):
        with pytest.raises(ValueError, match="execute literally"):
            WorkloadNode(name="x", op="reduce_scatter", nbytes=8.0, sync=True)

    def test_peers_validation(self):
        with pytest.raises(ValueError, match="negative peers"):
            WorkloadNode(name="x", op="all_to_all", nbytes=8.0, peers=-2)
        with pytest.raises(ValueError, match="1-rank sync"):
            sync("x", peers=1)

    def test_every_collective_op_constructs(self):
        for op in COLLECTIVE_NODE_OPS:
            node = WorkloadNode(name=op, op=op, nbytes=64.0)
            assert not node.is_compute


class TestWorkload:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no nodes"):
            Workload(name="w", nodes=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate node name"):
            Workload(name="w", nodes=(compute("a"), compute("a")))

    def test_forward_dep_rejected(self):
        # deps must be strict back-edges: the node list is its own
        # topological order, so a workload can never deadlock.
        with pytest.raises(ValueError, match="earlier node"):
            Workload(name="w", nodes=(compute("a", deps=(0,)), compute("b")))
        with pytest.raises(ValueError, match="earlier node"):
            Workload(name="w", nodes=(compute("a"), compute("b", deps=(2,))))

    def test_dep_on_sync_rejected(self):
        with pytest.raises(ValueError, match="use carry_deps"):
            Workload(
                name="w",
                nodes=(compute("a"), sync("s", deps=(0,)),
                       compute("b", deps=(1,))),
            )

    def test_carry_dep_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            Workload(name="w", nodes=(compute("a", carry_deps=(5,)),))

    def test_compute_node_required(self):
        with pytest.raises(ValueError, match="no compute node"):
            Workload(name="w", nodes=(sync("s"),))

    def test_derived_views(self):
        wl = Workload(
            name="w",
            nodes=(
                compute("ff", carry_deps=(3,)),
                compute("bp", deps=(0,)),
                WorkloadNode(name="x", op="all_to_all", nbytes=32.0, deps=(1,)),
                sync("s", nbytes=1e6, deps=(1,)),
            ),
        )
        assert wl.first_compute_index == 0
        assert wl.sync_indices == (3,)
        assert wl.sync_bytes == 1e6
        assert wl.consumers_of(3) == (0,)
        assert "4 nodes" in wl.describe()

    def test_frozen(self):
        wl = Workload(name="w", nodes=(compute("a"),))
        with pytest.raises(AttributeError):
            wl.name = "other"
