"""Golden-value regression guards.

Snapshot the headline numbers of the calibrated simulator.  These are
deliberately loose (2% tolerance): their job is to catch *accidental*
drift — a formula edit, a changed default — not to forbid deliberate
recalibration.  If you change the calibration on purpose, update the
constants here and the corresponding rows in EXPERIMENTS.md together.
"""

import pytest

from repro.models.zoo import get_model
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.schedulers.base import simulate

#: (scheduler, model, network) -> steady-state iteration seconds.
GOLDEN_ITERATIONS = {
    ("wfbp", "resnet50", "10gbe"): 0.7010,
    ("horovod", "resnet50", "10gbe"): 0.2722,
    ("ddp", "resnet50", "10gbe"): 0.2555,
    ("dear", "resnet50", "10gbe"): 0.2467,
    ("dear", "resnet50", "100gbib"): 0.2239,
    ("dear", "bert_large", "10gbe"): 2.3765,
    ("zero", "bert_large", "10gbe"): 3.4990,
    ("bytescheduler", "densenet201", "10gbe"): 2.7519,
}

_CLUSTERS = {"10gbe": cluster_10gbe(), "100gbib": cluster_100gbib()}

_OPTIONS = {
    "horovod": {"buffer_bytes": 25e6},
    "dear": {"fusion": "buffer", "buffer_bytes": 25e6},
}


@pytest.mark.parametrize(
    "scheduler,model_name,network",
    sorted(GOLDEN_ITERATIONS),
)
def test_golden_iteration_time(scheduler, model_name, network):
    expected = GOLDEN_ITERATIONS[(scheduler, model_name, network)]
    result = simulate(
        scheduler,
        get_model(model_name),
        _CLUSTERS[network],
        **_OPTIONS.get(scheduler, {}),
    )
    assert result.iteration_time == pytest.approx(expected, rel=0.02), (
        "golden value drifted — if this change is intentional, update "
        "GOLDEN_ITERATIONS and EXPERIMENTS.md together"
    )


def test_golden_smax_values():
    """The analytic Table II column (exact, so tolerance is tight)."""
    from repro.analysis.speedup import max_speedup_for

    expected = {
        ("resnet50", "10gbe"): 61.63,
        ("bert_base", "10gbe"): 25.49,
        ("bert_large", "100gbib"): 51.75,
    }
    for (model_name, network), value in expected.items():
        got = max_speedup_for(get_model(model_name), _CLUSTERS[network])
        assert got == pytest.approx(value, rel=0.005), (model_name, network)


def test_golden_cost_model_anchors():
    """The paper's §II-D spot measurements stay pinned."""
    from repro.network.cost_model import CollectiveTimeModel

    cost = CollectiveTimeModel(cluster_10gbe())
    assert cost.all_reduce(1e6) == pytest.approx(4.47e-3, rel=0.01)
    assert cost.all_reduce(5e5) == pytest.approx(3.69e-3, rel=0.01)
