"""The on-disk result cache: round trips, invalidation, corruption."""

import json

import pytest

from repro.runner.cache import (
    ResultCache,
    result_from_dict,
    result_to_dict,
    run_cached,
)
from repro.runner.spec import RunSpec


@pytest.fixture()
def spec() -> RunSpec:
    return RunSpec.create("wfbp", "resnet50", "10gbe", iterations=3)


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(root=tmp_path / "cache")


class TestRoundTrip:
    def test_put_then_get(self, cache, spec):
        result = run_cached(spec, cache=cache)
        again = cache.get(spec)
        assert again is not None
        assert again.iteration_time == result.iteration_time
        assert again.iteration_times == result.iteration_times
        assert isinstance(again.iteration_times, tuple)
        assert again.tracer is None

    def test_miss_on_empty_cache(self, cache, spec):
        assert cache.get(spec) is None
        assert cache.stats()["misses"] == 1

    def test_hit_rate(self, cache, spec):
        run_cached(spec, cache=cache)
        run_cached(spec, cache=cache)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_result_identical(self, cache, spec):
        cold = run_cached(spec, cache=cache)
        warm = run_cached(spec, cache=cache)
        assert result_to_dict(cold) == result_to_dict(warm)

    def test_result_dict_round_trip(self, spec):
        result = spec.run()
        rebuilt = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert rebuilt.iteration_time == result.iteration_time
        assert rebuilt.scheduler == result.scheduler
        assert rebuilt.world_size == result.world_size


class TestInvalidation:
    def test_schema_tag_invalidates(self, tmp_path, spec):
        old = ResultCache(root=tmp_path, schema="dear-cache-vOLD")
        run_cached(spec, cache=old)
        new = ResultCache(root=tmp_path, schema="dear-cache-vNEW")
        assert new.get(spec) is None

    def test_fingerprint_mismatch_is_a_miss(self, cache, spec):
        run_cached(spec, cache=cache)
        path = cache._path(spec.fingerprint)
        entry = json.loads(path.read_text())
        entry["fingerprint"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert cache.get(spec) is None
        assert not path.exists()  # evicted

    def test_disabled_cache_never_stores(self, tmp_path, spec):
        cache = ResultCache(root=tmp_path, enabled=False)
        run_cached(spec, cache=cache)
        assert cache.get(spec) is None
        assert cache.puts == 0


class TestCorruptionRecovery:
    def test_garbage_entry_recomputes(self, cache, spec):
        result = run_cached(spec, cache=cache)
        path = cache._path(spec.fingerprint)
        path.write_text("{ not json at all")
        recovered = run_cached(spec, cache=cache)
        assert recovered.iteration_time == result.iteration_time
        # The recompute healed the entry on disk.
        assert cache.get(spec) is not None

    def test_truncated_entry_recomputes(self, cache, spec):
        run_cached(spec, cache=cache)
        path = cache._path(spec.fingerprint)
        path.write_text(path.read_text()[:40])
        assert run_cached(spec, cache=cache).iteration_time > 0

    def test_missing_result_key_recomputes(self, cache, spec):
        run_cached(spec, cache=cache)
        path = cache._path(spec.fingerprint)
        entry = json.loads(path.read_text())
        del entry["result"]
        path.write_text(json.dumps(entry))
        assert run_cached(spec, cache=cache).iteration_time > 0
