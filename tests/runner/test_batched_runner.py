"""Batched runner parity: run_many with DEAR_BATCHED on vs off.

The batched path is an engine swap under ``run_many``, so the whole
observable result — every ScheduleResult field, extras dict, and
iteration-time list — must be equal whether a sweep rode the config-axis
replay or the classic per-spec pool.  These tests pin that, plus the
fallback taxonomy: which specs batch, which drop to the classic path,
and how the two populations interleave in one call.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults.plan import FaultPlan, StragglerFault
from repro.runner.batched import batched_enabled, run_batched
from repro.runner.cache import ResultCache
from repro.runner.executor import run_many
from repro.runner.spec import RunSpec
from repro.schedulers.base import get_scheduler

STRAGGLER = FaultPlan(stragglers=(StragglerFault(0.0, 5.0, compute_factor=1.5),))


def _mixed_specs(tiny_model, ethernet_cluster) -> list[RunSpec]:
    """Single-rank, faulty, multirank, and collapse specs in one sweep."""
    world = ethernet_cluster.world_size
    return [
        RunSpec.create("wfbp", tiny_model, ethernet_cluster, iterations=4),
        RunSpec.create("ddp", tiny_model, ethernet_cluster, iterations=4),
        RunSpec.create("dear", tiny_model, ethernet_cluster, iterations=4,
                       fusion="none"),
        RunSpec.create("dear", tiny_model, ethernet_cluster, iterations=4,
                       fusion="buffer", buffer_bytes=25e6),
        RunSpec.create("wfbp", tiny_model, ethernet_cluster, iterations=4,
                       faults=STRAGGLER),
        RunSpec.create("wfbp", tiny_model, ethernet_cluster, iterations=4,
                       compute_scales=[1.0] * (world - 1) + [1.3]),
        RunSpec.create("wfbp", tiny_model, ethernet_cluster, iterations=4,
                       compute_scales=[1.0] * world),  # collapses
    ]


class TestRunManyParity:
    def test_batched_equals_classic(self, tiny_model, ethernet_cluster,
                                    tmp_path, monkeypatch):
        specs = _mixed_specs(tiny_model, ethernet_cluster)
        monkeypatch.setenv("DEAR_BATCHED", "0")
        classic = run_many(specs, jobs=1, cache=ResultCache(root=tmp_path / "a"))
        monkeypatch.setenv("DEAR_BATCHED", "1")
        batched = run_many(specs, jobs=1, cache=ResultCache(root=tmp_path / "b"))
        for spec, left, right in zip(specs, classic, batched):
            assert dataclasses.asdict(left) == dataclasses.asdict(right), spec.label

    def test_batched_results_are_cached(self, tiny_model, ethernet_cluster,
                                        tmp_path, monkeypatch):
        monkeypatch.setenv("DEAR_BATCHED", "1")
        cache = ResultCache(root=tmp_path)
        specs = _mixed_specs(tiny_model, ethernet_cluster)[:3]
        run_many(specs, jobs=1, cache=cache)
        assert cache.puts == len(specs)
        hits_before = cache.hits
        again = run_many(specs, jobs=1, cache=cache)
        assert cache.hits == hits_before + len(specs)
        assert [r.scheduler for r in again] == [s.scheduler for s in specs]


class TestRunBatchedFallback:
    def test_bytescheduler_falls_back(self, tiny_model, ethernet_cluster):
        """Credit-based scheduling is dynamic: no fast path, no batch."""
        spec = RunSpec.create("bytescheduler", tiny_model, ethernet_cluster,
                              iterations=4)
        assert run_batched([spec]) == [None]

    def test_bo_fusion_falls_back(self, tiny_model, ethernet_cluster):
        """DeAR/Horovod BO tuning wraps run() in a trials loop; the
        recorded schedule would skip it, so these must not batch."""
        specs = [
            RunSpec.create("dear", tiny_model, ethernet_cluster, iterations=4,
                           fusion="bo", bo_trials=2),
            RunSpec.create("horovod", tiny_model, ethernet_cluster, iterations=4,
                           fusion="bo", bo_trials=2),
        ]
        assert run_batched(specs) == [None, None]

    def test_forced_classic_engine_falls_back(self, tiny_model, ethernet_cluster):
        spec = RunSpec.create("wfbp", tiny_model, ethernet_cluster,
                              iterations=4, fastpath=False)
        assert run_batched([spec]) == [None]

    def test_disabled_via_env(self, tiny_model, ethernet_cluster, monkeypatch):
        monkeypatch.setenv("DEAR_BATCHED", "0")
        assert not batched_enabled()
        spec = RunSpec.create("wfbp", tiny_model, ethernet_cluster, iterations=4)
        assert run_batched([spec]) == [None]

    def test_mixed_batchable_and_not(self, tiny_model, ethernet_cluster):
        specs = [
            RunSpec.create("wfbp", tiny_model, ethernet_cluster, iterations=4),
            RunSpec.create("bytescheduler", tiny_model, ethernet_cluster,
                           iterations=4),
            RunSpec.create("ddp", tiny_model, ethernet_cluster, iterations=4),
        ]
        outcomes = run_batched(specs)
        assert outcomes[1] is None
        assert outcomes[0] is not None and outcomes[2] is not None
        result, seconds = outcomes[0]
        assert result.scheduler == "wfbp" and result.tracer is None
        assert seconds >= 0.0


class TestSupportsBatchedRun:
    def test_static_schedulers_opt_in(self):
        for name in ("wfbp", "ddp", "mg_wfbp", "serial", "zero"):
            assert get_scheduler(name).supports_batched_run(), name

    @pytest.mark.parametrize("name", ["dear", "horovod"])
    def test_bo_mode_opts_out(self, name):
        assert not get_scheduler(name, fusion="bo").supports_batched_run()
        assert get_scheduler(name, fusion="buffer",
                             buffer_bytes=25e6).supports_batched_run()
