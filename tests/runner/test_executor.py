"""Fan-out executor: ordering, dedup, fallback, serial/parallel parity."""

import pickle

import repro.runner.executor as executor_module
from repro.experiments.sweeps import latency_sweep
from repro.runner.cache import ResultCache, reset_default_cache
from repro.runner.executor import resolve_jobs, run_many, simulate_cached
from repro.runner.spec import RunSpec


def _specs(iterations: int = 3) -> list[RunSpec]:
    return [
        RunSpec.create("wfbp", "resnet50", "10gbe", iterations=iterations),
        RunSpec.create("horovod", "resnet50", "10gbe", buffer_bytes=25e6,
                       iterations=iterations),
        RunSpec.create("dear", "resnet50", "10gbe", fusion="none",
                       iterations=iterations),
    ]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("DEAR_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("DEAR_JOBS", "7")
        assert resolve_jobs() == 7

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("DEAR_JOBS", "lots")
        assert resolve_jobs() >= 1

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestRunMany:
    def test_input_order_preserved(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        results = run_many(_specs(), jobs=1, cache=cache)
        assert [r.scheduler for r in results] == ["wfbp", "horovod", "dear"]

    def test_duplicates_computed_once(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = _specs()[0]
        results = run_many([spec, spec, spec], jobs=1, cache=cache)
        assert cache.puts == 1
        assert len({id(r) for r in results}) == 1

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_many(_specs(), jobs=1, cache=ResultCache(root=tmp_path / "a"))
        parallel = run_many(_specs(), jobs=2, cache=ResultCache(root=tmp_path / "b"))
        for left, right in zip(serial, parallel):
            assert left.iteration_time == right.iteration_time
            assert left.iteration_times == right.iteration_times

    def test_cached_entries_skip_execution(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_many(_specs(), jobs=1, cache=cache)
        run_many(_specs(), jobs=1, cache=cache)
        assert cache.hits == 3
        assert cache.puts == 3

    def test_falls_back_when_pool_breaks(self, tmp_path, monkeypatch):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, iterable):
                raise pickle.PicklingError("cannot pickle")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", ExplodingPool)
        cache = ResultCache(root=tmp_path)
        results = run_many(_specs(), jobs=4, cache=cache)
        assert [r.scheduler for r in results] == ["wfbp", "horovod", "dear"]


class TestSimulateCached:
    def test_counts_as_hit_second_time(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        first = simulate_cached("wfbp", "resnet50", "10gbe", iterations=3,
                                cache=cache)
        second = simulate_cached("wfbp", "resnet50", "10gbe", iterations=3,
                                 cache=cache)
        assert cache.hits == 1
        assert first.iteration_time == second.iteration_time


class TestSweepParity:
    """The acceptance bar: latency_sweep identical at DEAR_JOBS=1 and 4."""

    @staticmethod
    def _sweep(monkeypatch, tmp_path, jobs: str):
        monkeypatch.setenv("DEAR_JOBS", jobs)
        monkeypatch.setenv("DEAR_CACHE_DIR", str(tmp_path / f"cache-{jobs}"))
        reset_default_cache()
        try:
            return latency_sweep(factors=(0.5, 1.0, 2.0), iterations=3)
        finally:
            reset_default_cache()

    def test_latency_sweep_parity(self, monkeypatch, tmp_path):
        serial = self._sweep(monkeypatch, tmp_path, "1")
        parallel = self._sweep(monkeypatch, tmp_path, "4")
        assert serial == parallel
