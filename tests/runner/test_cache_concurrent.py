"""Cross-process cache write race: same key, two writers, zero torn reads.

CI shares one ``DEAR_CACHE_DIR`` between the serve daemon and sibling
steps, so concurrent same-fingerprint writers are a supported mode, not
an accident.  The contract under contention: every ``get`` observes a
complete entry (writes go through a temp file + ``os.replace``), and
the steady state is exactly one valid entry per fingerprint.
"""

from __future__ import annotations

import subprocess
import sys

from repro.runner.cache import ResultCache
from repro.runner.spec import RunSpec

#: Runs in a child process: hammer put+get on one fingerprint and fail
#: loudly on any torn or invalid read.  Argv: cache_root, rounds.
_HAMMER = """
import dataclasses
import sys

from repro.runner.cache import ResultCache
from repro.runner.spec import RunSpec

root, rounds = sys.argv[1], int(sys.argv[2])
spec = RunSpec.create("wfbp", "resnet50", "10gbe", iterations=3)
result = dataclasses.replace(spec.run(), tracer=None)
cache = ResultCache(root=root)
for _ in range(rounds):
    cache.put(spec, result)
    seen = cache.get(spec)
    assert seen is not None, "torn read: entry vanished or failed to parse"
    assert seen.iteration_time == result.iteration_time
    assert seen.iteration_times == result.iteration_times
print(f"ok hits={cache.hits} misses={cache.misses}")
"""

ROUNDS = 60


def test_two_process_same_key_write_race(tmp_path):
    root = tmp_path / "race-cache"
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", _HAMMER, str(root), str(ROUNDS)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(2)
    ]
    for proc in writers:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, f"writer failed:\n{out}\n{err}"
        # Every read in the loop parsed: no misses after the first put.
        assert "misses=0" in out, out

    # Steady state: exactly one complete entry, no leftover temp files.
    entries = list(root.rglob("*.json"))
    assert len(entries) == 1, entries
    assert not list(root.rglob("*.tmp"))

    spec = RunSpec.create("wfbp", "resnet50", "10gbe", iterations=3)
    final = ResultCache(root=root).get(spec)
    assert final is not None
    assert final.scheduler == "wfbp"
