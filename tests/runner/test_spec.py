"""RunSpec identity: canonical JSON, fingerprints, execution."""

import json
import os
import subprocess
import sys

import pytest

from repro.runner.spec import RunSpec
from repro.schedulers.base import simulate


def _spec(**overrides) -> RunSpec:
    kwargs = dict(buffer_bytes=25e6, iterations=5)
    kwargs.update(overrides)
    return RunSpec.create("horovod", "resnet50", "10gbe", **kwargs)


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        assert _spec().fingerprint == _spec().fingerprint

    def test_option_change_changes_fingerprint(self):
        assert _spec().fingerprint != _spec(buffer_bytes=64e6).fingerprint

    def test_iterations_change_changes_fingerprint(self):
        assert _spec().fingerprint != _spec(iterations=7).fingerprint

    def test_scheduler_change_changes_fingerprint(self):
        dear = RunSpec.create("dear", "resnet50", "10gbe", fusion="none")
        wfbp = RunSpec.create("wfbp", "resnet50", "10gbe")
        assert dear.fingerprint != wfbp.fingerprint

    def test_option_order_is_canonical(self):
        a = RunSpec.create("dear", "resnet50", "10gbe",
                           fusion="buffer", buffer_bytes=25e6)
        b = RunSpec.create("dear", "resnet50", "10gbe",
                           buffer_bytes=25e6, fusion="buffer")
        assert a.fingerprint == b.fingerprint

    def test_stable_after_running(self):
        spec = _spec()
        before = spec.fingerprint
        spec.run()
        # Running fills lazy caches on the model; identity must not move.
        assert spec.fingerprint == before

    def test_stable_across_process_restarts(self):
        code = (
            "from repro.runner.spec import RunSpec;"
            "spec = RunSpec.create('horovod', 'resnet50', '10gbe',"
            " buffer_bytes=25e6, iterations=5);"
            "print(spec.fingerprint)"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert output == _spec().fingerprint


class TestCanonicalJson:
    def test_is_valid_sorted_json(self):
        payload = json.loads(_spec().canonical_json())
        assert payload["scheduler"] == "horovod"
        assert payload["model"]["name"] == "resnet50"
        assert payload["options"] == [["buffer_bytes", 25e6]]

    def test_private_fields_excluded(self):
        assert "_tensor_cache" not in _spec().canonical_json()

    def test_label(self):
        assert _spec().label == "horovod/resnet50/64xGPU/10GbE"


class TestRun:
    def test_matches_direct_simulate(self, resnet50, ethernet_cluster):
        spec = RunSpec.create(
            "horovod", resnet50, ethernet_cluster, buffer_bytes=25e6
        )
        direct = simulate("horovod", resnet50, ethernet_cluster, buffer_bytes=25e6)
        assert spec.run().iteration_time == pytest.approx(direct.iteration_time)

    def test_rejects_unknown_model(self):
        with pytest.raises(KeyError):
            RunSpec.create("horovod", "not_a_model", "10gbe")
