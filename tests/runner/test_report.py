"""Bench report payloads and the baseline regression gate."""

import json

import pytest

from repro.runner.bench import bench_suites, run_bench
from repro.runner.cache import ResultCache
from repro.runner.report import (
    BENCH_SCHEMA,
    BenchReporter,
    bench_filename,
    compare_to_baseline,
    format_regressions,
    iteration_metrics,
)
from repro.runner.spec import RunSpec


def _payload(value: float) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "suites": {
            "suite": {
                "wall_time_s": 1.0,
                "metrics": {"dear/resnet50": {"median_iter_s": value}},
            }
        },
    }


class TestReporter:
    def test_payload_shape(self):
        reporter = BenchReporter(quick=True)
        reporter.add_suite("s", 1.5, {"k": {"median_iter_s": 0.2}})
        payload = reporter.payload({"hits": 1, "misses": 0, "hit_rate": 1.0})
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["quick"] is True
        assert payload["suites"]["s"]["wall_time_s"] == 1.5
        assert payload["cache"]["hits"] == 1

    def test_write_creates_dated_file(self, tmp_path):
        reporter = BenchReporter()
        reporter.add_suite("s", 0.1)
        path = reporter.write(tmp_path)
        assert path.name == bench_filename()
        assert path.name.startswith("BENCH_")
        assert json.loads(path.read_text())["schema"] == BENCH_SCHEMA

    def test_iteration_metrics_median(self):
        spec = RunSpec.create("wfbp", "resnet50", "10gbe", iterations=3)
        metrics = iteration_metrics(spec.run())
        assert metrics["median_iter_s"] > 0


class TestBaselineGate:
    def test_no_regression_when_identical(self):
        assert compare_to_baseline(_payload(0.25), _payload(0.25)) == []

    def test_improvement_passes(self):
        assert compare_to_baseline(_payload(0.20), _payload(0.25)) == []

    def test_small_slowdown_within_tolerance(self):
        assert compare_to_baseline(_payload(0.26), _payload(0.25)) == []

    def test_large_slowdown_fails(self):
        regressions = compare_to_baseline(_payload(0.30), _payload(0.25))
        assert len(regressions) == 1
        assert regressions[0]["metric"] == "suite/dear/resnet50"
        assert regressions[0]["slowdown_pct"] == pytest.approx(20.0)

    def test_custom_tolerance(self):
        assert compare_to_baseline(_payload(0.26), _payload(0.25),
                                   tolerance=0.5) == []
        assert compare_to_baseline(_payload(0.40), _payload(0.25),
                                   tolerance=0.5)

    def test_new_metrics_ignored(self):
        current = _payload(0.25)
        current["suites"]["suite"]["metrics"]["new/metric"] = {
            "median_iter_s": 9.9
        }
        assert compare_to_baseline(current, _payload(0.25)) == []

    def test_format_regressions_readable(self):
        text = format_regressions(
            compare_to_baseline(_payload(0.30), _payload(0.25))
        )
        assert "REGRESSION suite/dear/resnet50" in text
        assert "+20.0%" in text


class TestBenchSuites:
    def test_quick_is_a_subset(self):
        quick = bench_suites(quick=True)
        full = bench_suites(quick=False)
        assert set(quick) == set(full) == {"schedulers", "fusion", "sweeps",
                                           "tuned", "workloads"}
        for suite in quick:
            assert len(quick[suite]) < len(full[suite])

    def test_quick_bench_end_to_end(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        payload = run_bench(quick=True, jobs=1, cache=cache)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["quick"] is True
        for suite, body in payload["suites"].items():
            assert body["wall_time_s"] >= 0
            if suite == "simcore":
                continue  # host wall-clock metrics, checked below
            for metrics in body["metrics"].values():
                assert metrics["median_iter_s"] > 0
        # simcore publishes simulator-performance numbers under keys the
        # regression gate ignores (anything but median_iter_s).
        simcore = payload["suites"]["simcore"]["metrics"]
        for metrics in simcore.values():
            assert "median_iter_s" not in metrics
            assert all(value > 0 for value in metrics.values())
        assert simcore["kernel/timer_chain"]["events_per_sec"] > 0
        assert simcore["replay/wfbp_resnet50"]["fastpath_speedup"] > 1.0
        # Second run is answered from the cache with identical metrics
        # for the simulation suites (simcore re-measures wall time).
        warm = run_bench(quick=True, jobs=1, cache=cache)
        assert warm["cache"]["hit_rate"] > 0
        assert {
            s: b["metrics"] for s, b in warm["suites"].items() if s != "simcore"
        } == {
            s: b["metrics"] for s, b in payload["suites"].items() if s != "simcore"
        }
