"""The ``dear-repro cache`` subcommand: stats and pruning."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.runner.cache import COUNTERS_FILE, ResultCache, run_cached
from repro.runner.cache_cmd import cache_main, prune_store, scan_store
from repro.runner.spec import RunSpec


@pytest.fixture()
def store(tmp_path):
    """A populated cache root: two entries, one hit, two misses."""
    root = tmp_path / "cache"
    cache = ResultCache(root=root)
    specs = [
        RunSpec.create("wfbp", "resnet50", "10gbe", iterations=3),
        RunSpec.create("dear", "resnet50", "10gbe", iterations=3,
                       fusion="buffer", buffer_bytes=25e6),
    ]
    for spec in specs:
        run_cached(spec, cache=cache)
    run_cached(specs[0], cache=cache)  # one hit
    return root


class TestScan:
    def test_counts_entries_and_counters(self, store):
        payload = scan_store(store)
        assert payload["entries"] == 2
        assert payload["bytes"] > 0
        assert sum(body["entries"] for body in payload["schemas"].values()) == 2
        assert payload["counters"]["hits"] == 1
        assert payload["counters"]["misses"] == 2
        assert payload["counters"]["puts"] == 2
        assert payload["counters"]["hit_rate"] == pytest.approx(1 / 3)

    def test_counters_file_is_not_an_entry(self, store):
        assert (store / COUNTERS_FILE).is_file()
        assert scan_store(store)["entries"] == 2

    def test_empty_and_missing_roots(self, tmp_path):
        payload = scan_store(tmp_path / "nowhere")
        assert payload["entries"] == 0
        assert payload["oldest_age_s"] is None
        assert payload["counters"]["hit_rate"] == 0.0


class TestPrune:
    def _ages(self, root):
        """Make every current entry look a week old."""
        stale = time.time() - 7 * 86400
        for path in root.rglob("*.json"):
            os.utime(path, (stale, stale))

    def test_age_prune_drops_cold_entries(self, store):
        self._ages(store)
        payload = prune_store(store, max_age_days=1.0)
        assert payload["removed"] == 2 and payload["kept"] == 0
        assert scan_store(store)["entries"] == 0

    def test_hit_refreshes_mtime_and_saves_entry(self, store):
        self._ages(store)
        spec = RunSpec.create("wfbp", "resnet50", "10gbe", iterations=3)
        assert ResultCache(root=store).get(spec) is not None  # touches mtime
        payload = prune_store(store, max_age_days=1.0)
        assert payload["removed"] == 1
        assert ResultCache(root=store).get(spec) is not None

    def test_byte_budget_evicts_oldest_first(self, store):
        entries = sorted(store.rglob("*.json"))
        old, new = entries[0], entries[1]
        stale = time.time() - 3600
        os.utime(old, (stale, stale))
        budget = new.stat().st_size
        payload = prune_store(store, max_bytes=budget)
        assert payload["removed"] == 1
        assert not old.exists() and new.exists()

    def test_dry_run_deletes_nothing(self, store):
        payload = prune_store(store, max_age_days=0.0, dry_run=True)
        assert payload["removed"] == 2 and payload["dry_run"]
        assert scan_store(store)["entries"] == 2

    def test_empty_shard_dirs_are_removed(self, store):
        prune_store(store, max_age_days=0.0)
        leftovers = [path for path in store.rglob("*") if path.is_dir()]
        assert leftovers == []


class TestCli:
    def test_stats_text(self, store, capsys):
        assert cache_main(["--root", str(store), "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert "1 hits / 2 misses / 2 puts" in out

    def test_stats_json(self, store, capsys):
        assert cache_main(["--root", str(store), "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["counters"]["puts"] == 2

    def test_prune_requires_a_limit(self, store, capsys):
        assert cache_main(["--root", str(store), "prune"]) == 2
        assert "--max-age-days" in capsys.readouterr().err

    def test_prune_reports_removal(self, store, capsys):
        code = cache_main(["--root", str(store), "prune", "--max-age-days", "0"])
        assert code == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert scan_store(store)["entries"] == 0

    def test_default_root_honours_cache_dir_env(self, store, capsys, monkeypatch):
        monkeypatch.setenv("DEAR_CACHE_DIR", str(store))
        assert cache_main(["stats"]) == 0
        assert str(store) in capsys.readouterr().out

    def test_dispatch_through_main(self, store, capsys):
        main(["cache", "--root", str(store), "stats"])
        assert "cache root" in capsys.readouterr().out
