"""Integration matrix: every scheduler on every workload.

A broad smoke-and-sanity sweep: all registered schedulers run to steady
state on representative Table I models over both networks, and the
universal invariants hold in every cell.
"""

import pytest

from repro.models.zoo import get_model
from repro.network.presets import cluster_100gbib, cluster_10gbe
from repro.schedulers.base import SCHEDULER_NAMES, simulate, single_gpu_result

MODELS = ("resnet50", "densenet201", "bert_large")
CLUSTERS = (cluster_10gbe(), cluster_100gbib())

_OPTIONS = {
    "horovod": {"buffer_bytes": 25e6},
    "dear": {"fusion": "buffer", "buffer_bytes": 25e6},
}


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("cluster", CLUSTERS, ids=lambda c: c.inter_link.name)
def test_scheduler_model_network_matrix(scheduler, model_name, cluster):
    model = get_model(model_name)
    result = simulate(
        scheduler, model, cluster, iterations=4, **_OPTIONS.get(scheduler, {})
    )
    single = single_gpu_result(model)

    # Universal invariants.
    assert result.iteration_time >= single.iteration_time - 1e-9
    assert result.iteration_times[-1] == pytest.approx(
        result.iteration_times[-2], rel=1e-6
    )
    assert 0.0 <= result.exposed_comm <= result.iteration_time + 1e-9
    speedup = result.scaling_speedup(single.iteration_time)
    assert 0.0 < speedup <= cluster.world_size * 1.02
    assert result.world_size == cluster.world_size
    assert result.batch_size == model.default_batch_size


def test_dear_dominates_matrix():
    """DeAR (25 MB) is never slower than WFBP/Horovod/DDP on any cell."""
    for model_name in MODELS:
        model = get_model(model_name)
        for cluster in CLUSTERS:
            dear = simulate(
                "dear", model, cluster, fusion="buffer", buffer_bytes=25e6,
                iterations=4,
            )
            for rival, options in (
                ("wfbp", {"buffer_bytes": 25e6}),
                ("horovod", {"buffer_bytes": 25e6}),
                ("ddp", {"buffer_bytes": 25e6}),
            ):
                other = simulate(
                    rival, model, cluster, iterations=4, **options
                )
                assert dear.iteration_time <= other.iteration_time + 1e-9, (
                    model_name, cluster.name, rival,
                )
