"""Tests for error feedback, compressed aggregation, and the timing model."""

import numpy as np
import pytest

from repro.collectives.transport import Transport
from repro.compression import (
    CompressionTimeModel,
    ErrorFeedback,
    FP16Compressor,
    TopKCompressor,
    compressed_all_gather_aggregate,
)
from repro.network.cost_model import CollectiveTimeModel
from repro.network.presets import cluster_10gbe


class TestErrorFeedback:
    def test_residual_holds_dropped_mass(self):
        ef = ErrorFeedback(TopKCompressor(density=0.5))
        gradient = np.array([10.0, 0.1, -20.0, 0.2])
        payload = ef.compress("w", gradient)
        restored = ef.decompress(payload)
        np.testing.assert_allclose(gradient - restored, ef.residual("w"))

    def test_residual_reinjected_next_step(self):
        """A small entry suppressed repeatedly must eventually transmit."""
        ef = ErrorFeedback(TopKCompressor(density=0.5))
        gradient = np.array([1.0, 0.3])  # density 0.5 -> keep 1 entry
        transmitted_small = False
        for _ in range(10):
            payload = ef.compress("w", gradient)
            restored = ef.decompress(payload)
            if restored[1] != 0:
                transmitted_small = True
        assert transmitted_small

    def test_cumulative_transmission_approaches_cumulative_gradient(self):
        ef = ErrorFeedback(TopKCompressor(density=0.25))
        rng = np.random.default_rng(0)
        gradient_sum = np.zeros(40)
        transmitted_sum = np.zeros(40)
        for _ in range(200):
            gradient = rng.normal(size=40)
            gradient_sum += gradient
            transmitted_sum += ef.decompress(ef.compress("w", gradient))
        # EF guarantees: difference == current residual (exact identity).
        np.testing.assert_allclose(
            gradient_sum - transmitted_sum, ef.residual("w"), atol=1e-9
        )

    def test_separate_keys_separate_residuals(self):
        ef = ErrorFeedback(TopKCompressor(density=0.5))
        ef.compress("a", np.array([1.0, 0.1]))
        ef.compress("b", np.array([2.0, 0.2]))
        assert not np.array_equal(ef.residual("a"), ef.residual("b"))

    def test_unknown_key(self):
        ef = ErrorFeedback(TopKCompressor(density=0.5))
        with pytest.raises(KeyError):
            ef.residual("never")

    def test_reset(self):
        ef = ErrorFeedback(TopKCompressor(density=0.5))
        ef.compress("w", np.array([1.0, 0.1]))
        ef.reset()
        with pytest.raises(KeyError):
            ef.residual("w")


class TestCompressedAggregation:
    def test_lossless_compressor_matches_allreduce(self):
        world = 4
        rng = np.random.default_rng(1)
        buffers = [rng.normal(size=30) for _ in range(world)]
        expected = np.mean(buffers, axis=0)
        transport = Transport(world)
        compressed_all_gather_aggregate(
            transport, buffers, TopKCompressor(density=1.0), average=True
        )
        for buf in buffers:
            np.testing.assert_allclose(buf, expected)
        assert transport.pending() == 0

    def test_all_ranks_identical_result(self):
        world = 5
        rng = np.random.default_rng(2)
        buffers = [rng.normal(size=64) for _ in range(world)]
        compressed_all_gather_aggregate(
            Transport(world), buffers, TopKCompressor(density=0.1)
        )
        for buf in buffers[1:]:
            np.testing.assert_array_equal(buf, buffers[0])

    def test_wire_volume_reflects_compression(self):
        world = 4
        rng = np.random.default_rng(3)
        size = 10_000
        dense = Transport(world)
        buffers = [rng.normal(size=size) for _ in range(world)]
        compressed_all_gather_aggregate(dense, buffers, FP16Compressor())
        sparse = Transport(world)
        buffers = [rng.normal(size=size) for _ in range(world)]
        compressed_all_gather_aggregate(
            sparse, buffers, TopKCompressor(density=0.01)
        )
        assert sparse.stats.bytes < dense.stats.bytes / 5

    def test_error_feedback_per_rank(self):
        world = 3
        rng = np.random.default_rng(4)
        efs = [ErrorFeedback(TopKCompressor(density=0.2)) for _ in range(world)]
        buffers = [rng.normal(size=50) for _ in range(world)]
        compressed_all_gather_aggregate(
            Transport(world), buffers, efs[0].compressor,
            error_feedback=efs, key="w",
        )
        for ef in efs:
            assert ef.residual("w").shape == (50,)

    def test_buffer_count_validated(self):
        with pytest.raises(ValueError):
            compressed_all_gather_aggregate(
                Transport(4), [np.zeros(4)], TopKCompressor(density=0.5)
            )


class TestCompressionTimeModel:
    def _models(self, density=0.01):
        base = CollectiveTimeModel(cluster_10gbe())
        return base, CompressionTimeModel(base, density=density)

    def test_aggressive_compression_wins_on_large_messages(self):
        base, compressed = self._models(density=0.001)
        nbytes = 500e6
        assert compressed.all_reduce(nbytes) < base.all_reduce(nbytes)

    def test_mild_compression_loses_at_scale(self):
        """c > 2/P: the all-gather pattern moves more bytes than the
        ring all-reduce it replaces — the crossover the paper's cited
        compression literature fights."""
        base, compressed = self._models(density=0.10)  # c = 0.2 > 2/64
        nbytes = 500e6
        assert compressed.all_reduce(nbytes) > base.all_reduce(nbytes)

    def test_analytic_crossover_at_two_over_p(self):
        """In the bandwidth-dominated limit the win condition is exactly
        ``wire_ratio < 2/P``: (P-1) c m beta  vs  2 (P-1)/P m beta."""
        from hypothesis import given, settings, strategies as st

        @settings(deadline=None, max_examples=30)
        @given(
            wire_over_crossover=st.floats(0.2, 5.0),
            p=st.sampled_from([8, 16, 64, 128]),
        )
        def check(wire_over_crossover, p):
            from repro.network.fabric import ClusterSpec, LinkSpec

            link = LinkSpec("l", latency=0.0, bandwidth=1e9)  # alpha = 0
            cluster = ClusterSpec(
                name="x", nodes=p, gpus_per_node=1,
                inter_link=link, intra_link=link,
            )
            base = CollectiveTimeModel(cluster)
            wire_ratio = wire_over_crossover * 2.0 / p
            compressed = CompressionTimeModel(
                base, density=min(1.0, wire_ratio),
                payload_expansion=wire_ratio / min(1.0, wire_ratio),
                overhead_per_byte=0.0,
            )
            nbytes = 1e8
            wins = compressed.all_reduce(nbytes) < base.all_reduce(nbytes)
            assert wins == (wire_over_crossover < 1.0)

        check()

    def test_decoupled_halves_sum_to_whole(self):
        _, compressed = self._models()
        nbytes = 100e6
        assert compressed.reduce_scatter(nbytes) + compressed.all_gather(
            nbytes
        ) == pytest.approx(compressed.all_reduce(nbytes))

    def test_scheduler_accepts_compressed_model(self):
        from repro.models.profiles import TimingModel
        from repro.models.zoo import get_model
        from repro.schedulers.base import get_scheduler

        model = get_model("bert_large")
        timing = TimingModel.for_model(model)
        base, compressed = self._models(density=0.001)
        dense = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            timing, base
        )
        sparse = get_scheduler("dear", fusion="buffer", buffer_bytes=25e6).run(
            timing, compressed
        )
        # BERT-Large on 10GbE is comm-dominated: 0.1% density must win.
        assert sparse.iteration_time < dense.iteration_time

    def test_zero_bytes_free(self):
        _, compressed = self._models()
        assert compressed.all_reduce(0) == 0.0

    def test_invalid_parameters(self):
        base = CollectiveTimeModel(cluster_10gbe())
        with pytest.raises(ValueError):
            CompressionTimeModel(base, density=0)
        with pytest.raises(ValueError):
            CompressionTimeModel(base, payload_expansion=0)
