"""Unit and property tests for the gradient compressors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    FP16Compressor,
    QSGDCompressor,
    RandomKCompressor,
    TopKCompressor,
)


def _gradient(size=1000, seed=0):
    return np.random.default_rng(seed).normal(size=size)


class TestTopK:
    def test_keeps_largest_entries(self):
        gradient = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        payload = TopKCompressor(density=0.4).compress(gradient)
        restored = TopKCompressor(density=0.4).decompress(payload)
        np.testing.assert_allclose(restored, [0, -5.0, 0, 3.0, 0])

    def test_wire_size_matches_density(self):
        gradient = _gradient(10_000)
        payload = TopKCompressor(density=0.01).compress(gradient)
        # 100 values (8B) + 100 indices (8B) vs 10000 * 8B raw
        assert payload.nbytes == pytest.approx(0.02 * gradient.nbytes, rel=0.05)

    def test_shape_preserved(self):
        gradient = _gradient(60).reshape(3, 20)
        restored = TopKCompressor(density=0.1).roundtrip(gradient)
        assert restored.shape == (3, 20)

    def test_density_one_is_lossless(self):
        gradient = _gradient(100)
        restored = TopKCompressor(density=1.0).roundtrip(gradient)
        np.testing.assert_array_equal(restored, gradient)

    def test_error_bounded_by_dropped_mass(self):
        gradient = _gradient(1000)
        restored = TopKCompressor(density=0.1).roundtrip(gradient)
        # Top-k keeps the largest magnitudes, so the error norm must be
        # smaller than any other 10%-sparse approximation's; in
        # particular smaller than the full norm.
        assert np.linalg.norm(gradient - restored) < np.linalg.norm(gradient)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            TopKCompressor(density=0.0)
        with pytest.raises(ValueError):
            TopKCompressor(density=1.5)

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 500), density=st.floats(0.01, 1.0))
    def test_restored_entries_exact(self, seed, density):
        """Kept entries are transmitted exactly; others are zero."""
        gradient = _gradient(300, seed)
        restored = TopKCompressor(density=density).roundtrip(gradient)
        kept = restored != 0
        np.testing.assert_array_equal(restored[kept], gradient[kept])


class TestRandomK:
    def test_unbiased_over_many_draws(self):
        gradient = _gradient(200, seed=3)
        total = np.zeros_like(gradient)
        draws = 400
        compressor = RandomKCompressor(density=0.25, seed=7)
        for _ in range(draws):
            total += compressor.roundtrip(gradient)
        np.testing.assert_allclose(total / draws, gradient, atol=0.5)

    def test_same_seed_same_indices(self):
        gradient = _gradient(100)
        a = RandomKCompressor(density=0.1, seed=5).compress(gradient)
        b = RandomKCompressor(density=0.1, seed=5).compress(gradient)
        np.testing.assert_array_equal(a.arrays["indices"], b.arrays["indices"])

    def test_rescaling_applied(self):
        gradient = np.ones(10)
        payload = RandomKCompressor(density=0.5, seed=0).compress(gradient)
        np.testing.assert_allclose(payload.arrays["values"], 2.0)


class TestQSGD:
    def test_unbiased_quantisation(self):
        gradient = _gradient(500, seed=1)
        compressor = QSGDCompressor(levels=15, seed=2)
        total = np.zeros_like(gradient)
        draws = 300
        for _ in range(draws):
            total += compressor.roundtrip(gradient)
        np.testing.assert_allclose(total / draws, gradient, atol=0.05)

    def test_zero_gradient(self):
        restored = QSGDCompressor().roundtrip(np.zeros(10))
        np.testing.assert_array_equal(restored, np.zeros(10))

    def test_error_shrinks_with_levels(self):
        gradient = _gradient(1000, seed=4)
        coarse = QSGDCompressor(levels=3, seed=0).roundtrip(gradient)
        fine = QSGDCompressor(levels=255, seed=0).roundtrip(gradient)
        assert np.linalg.norm(gradient - fine) < np.linalg.norm(gradient - coarse)

    def test_wire_size_is_int16_plus_norm(self):
        gradient = _gradient(1000)
        payload = QSGDCompressor().compress(gradient)
        assert payload.nbytes == 1000 * 2 + 8

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            QSGDCompressor(levels=0)


class TestFP16:
    def test_roundtrip_close(self):
        gradient = _gradient(100)
        restored = FP16Compressor().roundtrip(gradient)
        np.testing.assert_allclose(restored, gradient, rtol=1e-3)

    def test_halves_wire_size(self):
        gradient = _gradient(100).astype(np.float64)
        payload = FP16Compressor().compress(gradient)
        assert payload.nbytes == gradient.nbytes / 4  # fp64 -> fp16

    def test_compression_ratio_helper(self):
        ratio = FP16Compressor().compression_ratio(_gradient(64))
        assert ratio == pytest.approx(0.25)
