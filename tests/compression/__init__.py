"""Test package."""
