"""The repro.api facade: configs, runs, collectives, compat shims."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import (
    SimulationConfig,
    config_from_payload,
    list_algorithms,
    list_schedulers,
    list_workloads,
    run_collective,
    run_simulation,
)
from repro.faults.plan import FaultPlan, LinkFault, RankFailure
from repro.network.presets import paper_testbed
from repro.schedulers.base import SCHEDULER_NAMES, simulate

ITERATIONS = 4


class TestSimulationConfig:
    def test_create_resolves_names(self):
        config = SimulationConfig.create("dear", "resnet50", "10gbe")
        assert config.model.name == "resnet50"
        assert config.cluster is paper_testbed("10gbe") or \
            config.cluster.name == paper_testbed("10gbe").name

    def test_create_accepts_spec_objects(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("wfbp", tiny_model, ethernet_cluster)
        assert config.model is tiny_model
        assert config.cluster is ethernet_cluster

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SimulationConfig.create("nccl", "resnet50", "10gbe")

    def test_frozen_and_hashable(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("dear", tiny_model, ethernet_cluster,
                                         buffer_bytes=25e6)
        assert hash(config)
        with pytest.raises(AttributeError):
            config.scheduler = "wfbp"

    def test_options_frozen_sorted(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create(
            "dear", tiny_model, ethernet_cluster,
            fusion="buffer", buffer_bytes=25e6,
        )
        assert config.options == (("buffer_bytes", 25e6), ("fusion", "buffer"))

    def test_replace(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("dear", tiny_model, ethernet_cluster)
        other = config.replace(scheduler="wfbp",
                               options={"buffer_bytes": 1e6})
        assert other.scheduler == "wfbp"
        assert other.options == (("buffer_bytes", 1e6),)
        assert config.scheduler == "dear"  # original untouched

    def test_replace_normalizes_faults(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("dear", tiny_model, ethernet_cluster)
        assert config.replace(faults=FaultPlan()).faults is None

    def test_to_spec_drops_fastpath(self, tiny_model, ethernet_cluster):
        fast = SimulationConfig.create("dear", tiny_model, ethernet_cluster,
                                       fastpath=True)
        slow = fast.replace(fastpath=False)
        # Both engines are bit-identical, so the cache key must not
        # distinguish them.
        assert fast.to_spec().fingerprint == slow.to_spec().fingerprint

    def test_spec_fingerprint_ignores_empty_plan(self, tiny_model,
                                                 ethernet_cluster):
        healthy = SimulationConfig.create("dear", tiny_model, ethernet_cluster)
        empty = SimulationConfig.create("dear", tiny_model, ethernet_cluster,
                                        faults=FaultPlan())
        faulty = SimulationConfig.create(
            "dear", tiny_model, ethernet_cluster,
            faults=FaultPlan(link_faults=(LinkFault(0, 1),)),
        )
        assert empty.to_spec().fingerprint == healthy.to_spec().fingerprint
        assert faulty.to_spec().fingerprint != healthy.to_spec().fingerprint
        assert "faults" not in healthy.to_spec().canonical_payload()

    def test_label(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("dear", tiny_model, ethernet_cluster)
        assert config.label == f"dear/tiny/{ethernet_cluster.name}"


class TestRunSimulation:
    def test_uncached_matches_simulate(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("dear", tiny_model, ethernet_cluster,
                                         iterations=ITERATIONS)
        via_facade = run_simulation(config)
        direct = simulate("dear", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS)
        assert via_facade.iteration_times == direct.iteration_times

    def test_cached_round_trip(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("wfbp", tiny_model, ethernet_cluster,
                                         iterations=ITERATIONS)
        live = run_simulation(config)
        cached = run_simulation(config, cached=True)
        assert cached.iteration_time == live.iteration_time
        assert cached.tracer is None  # cached results are tracer-less

    def test_faulty_config_runs(self, tiny_model, ethernet_cluster):
        plan = FaultPlan(link_faults=(LinkFault(0.0, 1e9, alpha_factor=2.0,
                                                beta_factor=2.0, link="both"),))
        config = SimulationConfig.create("dear", tiny_model, ethernet_cluster,
                                         iterations=ITERATIONS, faults=plan)
        result = run_simulation(config)
        assert result.extras["fault_plan"] == plan.label()


class TestRunCollective:
    def test_healthy_all_reduce_exact(self):
        result = run_collective("all_reduce", 8, nelems=64, seed=0)
        rng = np.random.default_rng(0)
        expected = np.sum([rng.uniform(-1.0, 1.0, 64) for _ in range(8)],
                          axis=0)
        for buf in result.buffers:
            # Ring reduction order differs from np.sum's: allow only
            # last-ulp accumulation noise.
            np.testing.assert_allclose(buf, expected, rtol=0, atol=1e-12)
        assert result.survivors == list(range(8))
        assert result.fault_summary is None
        assert result.wire_bytes > 0 and result.messages > 0

    def test_rs_ag_equals_all_reduce(self):
        fused = run_collective("all_reduce", 8, nelems=64, seed=3)
        decoupled = run_collective("rs_ag", 8, nelems=64, seed=3)
        for a, b in zip(fused.buffers, decoupled.buffers):
            np.testing.assert_array_equal(a, b)

    def test_explicit_buffers_are_copied(self):
        mine = [np.ones(16) for _ in range(4)]
        result = run_collective("all_reduce", 4, buffers=mine)
        np.testing.assert_array_equal(mine[0], np.ones(16))  # untouched
        np.testing.assert_array_equal(result.buffers[0], np.full(16, 4.0))

    def test_buffer_count_checked(self):
        with pytest.raises(ValueError, match="expected 4 buffers"):
            run_collective("all_reduce", 4, buffers=[np.ones(8)] * 3)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            run_collective("broadcast", 4)

    def test_faulty_plan_routes_through_resilience(self):
        plan = FaultPlan(seed=0, rank_failures=(RankFailure(2),))
        result = run_collective("all_reduce", 8, nelems=64, seed=1,
                                algorithm="halving_doubling", faults=plan)
        assert result.survivors == [r for r in range(8) if r != 2]
        assert result.algorithm == "ring"  # degraded: 7 is not a power of two
        assert result.fault_summary["rebuilds"] == 1

    def test_timing_only_plan_stays_on_plain_communicator(self):
        plan = FaultPlan(link_faults=(LinkFault(0, 1),))
        result = run_collective("all_reduce", 4, nelems=32, faults=plan)
        assert result.fault_summary is None  # no data-level faults to survive


class TestListings:
    def test_list_schedulers(self):
        assert list_schedulers() == SCHEDULER_NAMES
        assert "dear" in list_schedulers()

    def test_list_algorithms(self):
        algorithms = list_algorithms()
        assert "ring" in algorithms and "halving_doubling" in algorithms

    def test_list_workloads(self):
        workloads = list_workloads()
        assert workloads == ("layerwise", "moe", "dlrm", "llm3d")


class TestWorkloadSurface:
    def test_create_accepts_registered_name(self, tiny_model, ethernet_cluster):
        config = SimulationConfig.create("wfbp", tiny_model, ethernet_cluster,
                                         iterations=ITERATIONS, workload="moe")
        assert config.workload == "moe"
        result = run_simulation(config)
        assert result.extras["workload"] == "moe"

    def test_unknown_workload_rejected(self, tiny_model, ethernet_cluster):
        with pytest.raises(ValueError, match="unknown workload"):
            SimulationConfig.create("wfbp", tiny_model, ethernet_cluster,
                                    workload="transformer")

    def test_fingerprint_survival_rule(self, tiny_model, ethernet_cluster):
        # Pre-workload fingerprints must keep resolving: the field only
        # enters the canonical payload when set.
        plain = SimulationConfig.create("wfbp", tiny_model, ethernet_cluster,
                                        iterations=ITERATIONS)
        tagged = plain.replace(workload="dlrm")
        assert "workload" not in plain.to_spec().canonical_payload()
        assert tagged.to_spec().canonical_payload()["workload"] == "dlrm"
        assert plain.to_spec().fingerprint != tagged.to_spec().fingerprint

    def test_payload_round_trip(self):
        config = config_from_payload({
            "scheduler": "dear", "model": "resnet50", "cluster": "10gbe",
            "iterations": ITERATIONS, "workload": "llm3d",
        })
        assert config.workload == "llm3d"

    def test_payload_unknown_field_still_rejected(self):
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_payload({
                "scheduler": "dear", "model": "resnet50", "cluster": "10gbe",
                "workloads": "moe",  # typo must not silently be dropped
            })


class TestPackageSurface:
    def test_top_level_reexports(self):
        assert repro.SimulationConfig is SimulationConfig
        assert repro.run_simulation is run_simulation
        assert repro.run_collective is run_collective
        assert repro.FaultPlan is FaultPlan
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestRemovedLegacyOptions:
    """The PR-4 deprecation cycle is over: the old ``simulate`` kwargs
    fail fast with a migration hint instead of warning and adapting."""

    def test_fusion_plan_removed(self, tiny_model, ethernet_cluster):
        with pytest.raises(TypeError, match="fusion_plan.*fusion="):
            simulate("dear", tiny_model, ethernet_cluster,
                     iterations=ITERATIONS, fusion_plan="layers")

    def test_topology_removed(self, tiny_model, ethernet_cluster):
        with pytest.raises(TypeError, match="topology.*ClusterSpec"):
            simulate("wfbp", tiny_model, ethernet_cluster,
                     iterations=ITERATIONS, topology="10gbe")

    def test_link_preset_removed(self, tiny_model, ethernet_cluster):
        with pytest.raises(TypeError, match="link_preset.*ClusterSpec"):
            simulate("wfbp", tiny_model, ethernet_cluster,
                     iterations=ITERATIONS, link_preset="10gbe")

    def test_world_size_removed(self, tiny_model, ethernet_cluster):
        with pytest.raises(TypeError, match="world_size.*with_nodes"):
            simulate("wfbp", tiny_model, ethernet_cluster,
                     iterations=ITERATIONS,
                     world_size=ethernet_cluster.world_size * 2)

    def test_modern_spellings_untouched(self, tiny_model, ethernet_cluster):
        result = simulate("dear", tiny_model, ethernet_cluster,
                          iterations=ITERATIONS, fusion="layers")
        assert result.iteration_time > 0
